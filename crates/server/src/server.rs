//! The server: N tenant heaps scheduled over one shared device.
//!
//! Discrete-event scheduling over the tenants' own `SimClock`s: each
//! scheduling pass picks the *runnable tenant with the smallest local
//! clock* — the tenant furthest behind in simulated time — and grants it
//! one job round, subject to the admission policy. A tenant whose virtual
//! finish tag leads the device virtual time by more than the admission
//! window is deferred (its GC/promotion bursts have overdrawn its
//! bandwidth share); when every runnable tenant is deferred, the one with
//! the smallest finish tag is admitted anyway so the plane never stalls.
//! Every decision lands on the tenant's flight-recorder timeline as a
//! `TenantSched` event; queueing delays appear as `DeviceQueued` events and
//! per-tenant [`TenantIo`] counters.

use crate::config::{ConfigError, ServerConfig, TenantWorkload};
use mini_giraph::{run_giraph_on_tenant, GiraphConfig, GiraphMode, TenantLoadError};
use mini_spark::{run_workload_on, ExecMode, SparkConfig, SparkContext};
use std::sync::Arc;
use teraheap_storage::obs::EventKind;
use teraheap_storage::{SharedDevice, SimClock, TenantId, TenantIo};

/// Per-tenant outcome of a server run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// Workload display name.
    pub workload: String,
    /// Job rounds completed.
    pub rounds: usize,
    /// Rounds that hit OOM (checksum 0 for those rounds).
    pub oom_rounds: usize,
    /// Final local clock, in simulated ns.
    pub total_ns: u64,
    /// Per-round latencies, in scheduling order.
    pub round_ns: Vec<u64>,
    /// p99 round latency (max for small round counts).
    pub p99_round_ns: u64,
    /// Mean round latency.
    pub mean_round_ns: u64,
    /// Arbitration counters (queueing delay, busy time, ops).
    pub io: TenantIo,
    /// Times the admission policy deferred this tenant.
    pub deferrals: u64,
    /// Checksum of the last completed round (mode-independent answer).
    pub checksum: f64,
}

/// Aggregate outcome of a server run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Per-tenant reports, in registration order.
    pub tenants: Vec<TenantReport>,
    /// Device virtual time consumed (total arbitrated service).
    pub device_vtime_ns: u64,
    /// Slowest tenant's final clock — the plane's makespan.
    pub makespan_ns: u64,
    /// Total job rounds across tenants.
    pub total_rounds: usize,
    /// Aggregate throughput: job rounds per simulated second.
    pub agg_rounds_per_sec: f64,
    /// Jain's fairness index over per-tenant round throughput
    /// (1.0 = perfectly fair, 1/N = one tenant starved the rest).
    pub jain_fairness: f64,
}

/// Jain's fairness index over non-negative rates.
pub fn jain_index(rates: &[f64]) -> f64 {
    let n = rates.len() as f64;
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|r| r * r).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sq)
}

/// The multi-tenant server plane.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    device: SharedDevice,
    clocks: Vec<Arc<SimClock>>,
    ids: Vec<TenantId>,
}

impl Server {
    /// Registers every tenant of `config` on a fresh shared device.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`] (the
    /// builder already validates; this re-validates defensively for
    /// hand-constructed configs).
    pub fn new(config: ServerConfig) -> Result<Self, ConfigError> {
        if config.tenants.is_empty() {
            return Err(ConfigError::ZeroTenants);
        }
        let device = SharedDevice::for_server(config.device, config.capacity_bytes);
        let mut clocks = Vec::with_capacity(config.tenants.len());
        let mut ids = Vec::with_capacity(config.tenants.len());
        for (i, t) in config.tenants.iter().enumerate() {
            if t.rounds == 0 {
                return Err(ConfigError::ZeroRounds);
            }
            let clock = Arc::new(SimClock::new());
            let id = device
                .add_tenant_placed(clock.clone(), t.quota_bytes, t.weight_milli, t.offset_bytes)
                .map_err(|e| match e {
                    teraheap_storage::AttachError::ZeroWeight => ConfigError::ZeroWeight,
                    teraheap_storage::AttachError::OverlappingPartition { existing } => {
                        ConfigError::OverlappingPartitions { tenant: i, existing }
                    }
                    teraheap_storage::AttachError::QuotaExceedsCapacity {
                        requested,
                        available,
                    } => ConfigError::QuotaExceedsCapacity { tenant: i, requested, available },
                    // ZeroQuota implies footprint > quota was already caught;
                    // DuplicateClock cannot happen with fresh clocks.
                    _ => ConfigError::QuotaBelowFootprint {
                        tenant: i,
                        footprint: t.h2.footprint_bytes(),
                        quota: t.quota_bytes,
                    },
                })?;
            if t.h2.footprint_bytes() > t.quota_bytes {
                return Err(ConfigError::QuotaBelowFootprint {
                    tenant: i,
                    footprint: t.h2.footprint_bytes(),
                    quota: t.quota_bytes,
                });
            }
            clocks.push(clock);
            ids.push(id);
        }
        Ok(Server { config, device, clocks, ids })
    }

    /// The shared device (for inspection and figure harnesses).
    pub fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// Tenant `i`'s clock (e.g. to enable its flight recorder).
    pub fn clock(&self, i: usize) -> &Arc<SimClock> {
        &self.clocks[i]
    }

    /// Runs every tenant to completion and reports fairness + throughput.
    pub fn run(&mut self) -> ServerReport {
        let n = self.config.tenants.len();
        let mut rounds_left: Vec<usize> =
            self.config.tenants.iter().map(|t| t.rounds).collect();
        let mut round_ns: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut deferrals = vec![0u64; n];
        let mut oom_rounds = vec![0usize; n];
        let mut checksums = vec![0.0f64; n];

        loop {
            // Runnable tenants, furthest-behind local clock first.
            let mut order: Vec<usize> = (0..n).filter(|&i| rounds_left[i] > 0).collect();
            if order.is_empty() {
                break;
            }
            order.sort_by_key(|&i| (self.clocks[i].total_ns(), i));
            let vtime = self.device.device_vtime_ns();
            let window = self.config.admission_window_ns;
            let mut chosen = None;
            for &i in &order {
                let tag = self.device.finish_tag_ns(self.ids[i]).expect("registered tenant");
                if tag <= vtime.saturating_add(window) {
                    chosen = Some(i);
                    break;
                }
                deferrals[i] += 1;
                self.clocks[i].emit(EventKind::TenantSched {
                    tenant: self.ids[i].tag(),
                    admitted: false,
                });
            }
            // All deferred: admit the smallest finish tag so progress is
            // guaranteed (virtual time only advances through service).
            let i = chosen.unwrap_or_else(|| {
                order
                    .iter()
                    .copied()
                    .min_by_key(|&i| self.device.finish_tag_ns(self.ids[i]).unwrap_or(u64::MAX))
                    .expect("non-empty runnable set")
            });
            self.clocks[i].emit(EventKind::TenantSched {
                tenant: self.ids[i].tag(),
                admitted: true,
            });
            let before = self.clocks[i].total_ns();
            match self.run_round(i) {
                Some(c) => checksums[i] = c,
                None => oom_rounds[i] += 1,
            }
            round_ns[i].push(self.clocks[i].total_ns() - before);
            rounds_left[i] -= 1;
        }

        let tenants: Vec<TenantReport> = (0..n)
            .map(|i| {
                let spec = &self.config.tenants[i];
                let mut sorted = round_ns[i].clone();
                sorted.sort_unstable();
                let p99_idx = (sorted.len() * 99).div_ceil(100).saturating_sub(1);
                let total: u64 = round_ns[i].iter().sum();
                TenantReport {
                    name: spec.name.clone(),
                    workload: spec.workload.name(),
                    rounds: round_ns[i].len(),
                    oom_rounds: oom_rounds[i],
                    total_ns: self.clocks[i].total_ns(),
                    p99_round_ns: sorted.get(p99_idx).copied().unwrap_or(0),
                    mean_round_ns: total / (round_ns[i].len().max(1) as u64),
                    round_ns: round_ns[i].clone(),
                    io: self.device.tenant_io(self.ids[i]).unwrap_or_default(),
                    deferrals: deferrals[i],
                    checksum: checksums[i],
                }
            })
            .collect();
        let makespan_ns = tenants.iter().map(|t| t.total_ns).max().unwrap_or(0);
        let total_rounds: usize = tenants.iter().map(|t| t.rounds).sum();
        let rates: Vec<f64> = tenants
            .iter()
            .map(|t| t.rounds as f64 / (t.total_ns.max(1) as f64))
            .collect();
        ServerReport {
            device_vtime_ns: self.device.device_vtime_ns(),
            makespan_ns,
            total_rounds,
            agg_rounds_per_sec: total_rounds as f64 / (makespan_ns.max(1) as f64 / 1e9),
            jain_fairness: jain_index(&rates),
            tenants,
        }
    }

    /// One job round for tenant `i`: build the tenant context (attach),
    /// run the workload, drop the context (detach — arbitration state
    /// persists). Returns the checksum, or `None` on OOM.
    fn run_round(&self, i: usize) -> Option<f64> {
        let spec = &self.config.tenants[i];
        let clock = self.clocks[i].clone();
        match spec.workload {
            TenantWorkload::Spark { workload, scale } => {
                let mode = ExecMode::TeraHeap { h2: spec.h2, device: self.config.device };
                let cfg = SparkConfig {
                    heap: spec.heap,
                    mode,
                    partitions: 4,
                    iterations: 3,
                };
                let mut ctx = SparkContext::new_tenant(cfg, &self.device, clock)
                    .expect("validated tenant attach cannot fail");
                run_workload_on(workload, &mut ctx, scale).ok()
            }
            TenantWorkload::Giraph { workload, vertices, avg_degree, seed } => {
                let mode = GiraphMode::TeraHeap { h2: spec.h2, device: self.config.device };
                let cfg = GiraphConfig { heap: spec.heap, ..GiraphConfig::small(mode) };
                match run_giraph_on_tenant(
                    workload, cfg, vertices, avg_degree, seed, &self.device, clock,
                ) {
                    Ok((_ctx, c)) => Some(c),
                    Err(TenantLoadError::Oom(_)) => None,
                    Err(TenantLoadError::Attach(e)) => {
                        panic!("validated tenant attach cannot fail: {e}")
                    }
                }
            }
            TenantWorkload::Query { sessions, ops, rows, seed } => {
                teraheap_query::run_tenant_round(
                    spec.heap, spec.h2, &self.device, clock, sessions, ops, rows, seed,
                )
                .ok()
            }
        }
    }
}
