//! Server-plane configuration: tenant specs, builders and typed errors.
//!
//! Follows the `HeapConfig` / `H2Config` builder idiom: a builder collects
//! settings, `build()` returns the first violated constraint as a typed
//! [`ConfigError`] instead of panicking (or silently misbehaving) mid-run.
//! Partition tiling is validated here and again at attach time — never at
//! first I/O.

use mini_giraph::GiraphWorkload;
use mini_spark::{DatasetScale, Workload};
use teraheap_core::H2Config;
use teraheap_runtime::HeapConfig;
use teraheap_storage::DeviceSpec;

/// What a tenant runs per job round.
#[derive(Debug, Clone, Copy)]
pub enum TenantWorkload {
    /// A mini-Spark job.
    Spark {
        /// The Spark workload.
        workload: Workload,
        /// Input dataset scale.
        scale: DatasetScale,
    },
    /// A mini-Giraph graph computation.
    Giraph {
        /// The Graphalytics workload.
        workload: GiraphWorkload,
        /// Vertices in the generated power-law graph.
        vertices: usize,
        /// Average out-degree.
        avg_degree: usize,
        /// Graph generator seed.
        seed: u64,
    },
    /// A query-serving round: closed-loop client sessions over columnar
    /// tables (hot H1 copy + cold H2 copy) through the
    /// `teraheap-query` executor.
    Query {
        /// Concurrent logical client sessions in the round.
        sessions: usize,
        /// Operations replayed across the sessions.
        ops: usize,
        /// Rows per table copy.
        rows: usize,
        /// Seed for table contents and the op stream.
        seed: u64,
    },
}

impl TenantWorkload {
    /// Display name, e.g. `spark:PR` or `giraph:WCC`.
    pub fn name(&self) -> String {
        match self {
            TenantWorkload::Spark { workload, .. } => format!("spark:{}", workload.name()),
            TenantWorkload::Giraph { workload, .. } => format!("giraph:{}", workload.name()),
            TenantWorkload::Query { sessions, ops, .. } => format!("query:{sessions}x{ops}"),
        }
    }
}

/// Why a server configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A server with no tenants schedules nothing.
    ZeroTenants,
    /// A tenant with zero job rounds never runs.
    ZeroRounds,
    /// The tenants' quotas do not fit the device capacity pool.
    QuotaExceedsCapacity {
        /// Index of the first tenant that did not fit.
        tenant: usize,
        /// Its requested quota in bytes.
        requested: usize,
        /// Bytes still unassigned at its placement.
        available: usize,
    },
    /// Two explicitly placed partitions overlap.
    OverlappingPartitions {
        /// Index of the tenant whose placement collided.
        tenant: usize,
        /// Index of the earlier tenant owning the overlapping range.
        existing: usize,
    },
    /// A tenant's H2 footprint does not fit its own quota.
    QuotaBelowFootprint {
        /// Index of the tenant.
        tenant: usize,
        /// Bytes its H2 mapping needs.
        footprint: usize,
        /// Its quota in bytes.
        quota: usize,
    },
    /// A zero arbitration weight would stall the tenant forever.
    ZeroWeight,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroTenants => write!(f, "server needs at least one tenant"),
            ConfigError::ZeroRounds => write!(f, "tenant needs at least one job round"),
            ConfigError::QuotaExceedsCapacity { tenant, requested, available } => write!(
                f,
                "tenant {tenant} quota {requested} B exceeds remaining capacity {available} B"
            ),
            ConfigError::OverlappingPartitions { tenant, existing } => {
                write!(f, "tenant {tenant}'s partition overlaps tenant {existing}'s")
            }
            ConfigError::QuotaBelowFootprint { tenant, footprint, quota } => write!(
                f,
                "tenant {tenant} H2 footprint {footprint} B exceeds its quota {quota} B"
            ),
            ConfigError::ZeroWeight => write!(f, "tenant weight must be non-zero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// One tenant of the server: a workload, its heap/H2 shape and its share of
/// the device.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name for reports and CSVs.
    pub name: String,
    /// What this tenant runs.
    pub workload: TenantWorkload,
    /// H1 configuration of the tenant's heap.
    pub heap: HeapConfig,
    /// H2 layout of the tenant's second heap.
    pub h2: H2Config,
    /// Device bytes reserved for this tenant.
    pub quota_bytes: usize,
    /// Arbitration weight (1000 = a full FIFO share).
    pub weight_milli: u64,
    /// Job rounds to run.
    pub rounds: usize,
    /// Explicit partition offset; `None` tiles after the previous tenant.
    pub offset_bytes: Option<usize>,
}

impl TenantSpec {
    /// Starts a builder with the server-plane defaults.
    pub fn builder(name: impl Into<String>, workload: TenantWorkload) -> TenantSpecBuilder {
        TenantSpecBuilder {
            spec: TenantSpec {
                name: name.into(),
                workload,
                heap: HeapConfig::with_words(32 << 10, 128 << 10),
                quota_bytes: 0, // resolved at build(): defaults to the footprint
                h2: H2Config::default(),
                weight_milli: 1000,
                rounds: 4,
                offset_bytes: None,
            },
            explicit_quota: None,
        }
    }
}

/// Builder for [`TenantSpec`].
#[derive(Debug, Clone)]
pub struct TenantSpecBuilder {
    spec: TenantSpec,
    explicit_quota: Option<usize>,
}

impl TenantSpecBuilder {
    /// H1 configuration of the tenant's heap.
    pub fn heap(mut self, heap: HeapConfig) -> Self {
        self.spec.heap = heap;
        self
    }

    /// H2 layout. Unless [`TenantSpecBuilder::quota_bytes`] is called, the
    /// quota defaults to exactly the layout's footprint.
    pub fn h2(mut self, h2: H2Config) -> Self {
        self.spec.h2 = h2;
        self
    }

    /// Device bytes reserved for this tenant (default: the H2 footprint).
    pub fn quota_bytes(mut self, quota: usize) -> Self {
        self.explicit_quota = Some(quota);
        self
    }

    /// Arbitration weight (1000 = a full FIFO share).
    pub fn weight_milli(mut self, weight: u64) -> Self {
        self.spec.weight_milli = weight;
        self
    }

    /// Job rounds to run.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.spec.rounds = rounds;
        self
    }

    /// Pins the partition to an explicit byte offset.
    pub fn offset_bytes(mut self, offset: usize) -> Self {
        self.spec.offset_bytes = Some(offset);
        self
    }

    /// Validates the per-tenant constraints.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroRounds`], [`ConfigError::ZeroWeight`] or
    /// [`ConfigError::QuotaBelowFootprint`] (reported with tenant index 0;
    /// [`ServerConfigBuilder::build`] re-checks with the real index).
    pub fn build(mut self) -> Result<TenantSpec, ConfigError> {
        if self.spec.rounds == 0 {
            return Err(ConfigError::ZeroRounds);
        }
        if self.spec.weight_milli == 0 {
            return Err(ConfigError::ZeroWeight);
        }
        let footprint = self.spec.h2.footprint_bytes();
        self.spec.quota_bytes = self.explicit_quota.unwrap_or(footprint);
        if footprint > self.spec.quota_bytes {
            return Err(ConfigError::QuotaBelowFootprint {
                tenant: 0,
                footprint,
                quota: self.spec.quota_bytes,
            });
        }
        Ok(self.spec)
    }
}

/// A validated server-plane configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cost model of the shared device.
    pub device: DeviceSpec,
    /// Total device capacity pool in bytes.
    pub capacity_bytes: usize,
    /// Admission slack: a tenant whose finish tag leads the device virtual
    /// time by more than this is deferred (its burst would overdraw its
    /// share). 0 = strict round-per-share admission.
    pub admission_window_ns: u64,
    /// The tenants, in registration order.
    pub tenants: Vec<TenantSpec>,
}

impl ServerConfig {
    /// Starts a builder for a device of `capacity_bytes`.
    pub fn builder(device: DeviceSpec, capacity_bytes: usize) -> ServerConfigBuilder {
        ServerConfigBuilder {
            device,
            capacity_bytes,
            admission_window_ns: 200_000,
            tenants: Vec::new(),
        }
    }
}

/// Builder for [`ServerConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    device: DeviceSpec,
    capacity_bytes: usize,
    admission_window_ns: u64,
    tenants: Vec<TenantSpec>,
}

impl ServerConfigBuilder {
    /// Admission slack in simulated ns (see [`ServerConfig`]).
    pub fn admission_window_ns(mut self, ns: u64) -> Self {
        self.admission_window_ns = ns;
        self
    }

    /// Adds a tenant.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Validates the whole configuration: at least one tenant, every H2
    /// footprint within its quota, and the partition tiling (explicit
    /// offsets must not overlap; every partition must fit the pool).
    ///
    /// # Errors
    ///
    /// The first violated constraint as a [`ConfigError`].
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        if self.tenants.is_empty() {
            return Err(ConfigError::ZeroTenants);
        }
        let mut placed: Vec<(usize, usize)> = Vec::new(); // (offset, quota)
        for (i, t) in self.tenants.iter().enumerate() {
            if t.rounds == 0 {
                return Err(ConfigError::ZeroRounds);
            }
            if t.weight_milli == 0 {
                return Err(ConfigError::ZeroWeight);
            }
            let footprint = t.h2.footprint_bytes();
            if footprint > t.quota_bytes {
                return Err(ConfigError::QuotaBelowFootprint {
                    tenant: i,
                    footprint,
                    quota: t.quota_bytes,
                });
            }
            let offset = match t.offset_bytes {
                Some(off) => {
                    for (j, &(o, q)) in placed.iter().enumerate() {
                        if off < o + q && o < off.saturating_add(t.quota_bytes) {
                            return Err(ConfigError::OverlappingPartitions {
                                tenant: i,
                                existing: j,
                            });
                        }
                    }
                    off
                }
                None => placed.iter().map(|&(o, q)| o + q).max().unwrap_or(0),
            };
            let end = offset.saturating_add(t.quota_bytes);
            if end > self.capacity_bytes {
                return Err(ConfigError::QuotaExceedsCapacity {
                    tenant: i,
                    requested: t.quota_bytes,
                    available: self.capacity_bytes.saturating_sub(offset),
                });
            }
            placed.push((offset, t.quota_bytes));
        }
        Ok(ServerConfig {
            device: self.device,
            capacity_bytes: self.capacity_bytes,
            admission_window_ns: self.admission_window_ns,
            tenants: self.tenants,
        })
    }
}
