//! Deterministic timeline exporters over recorded [`Event`]s.
//!
//! Everything here is a pure function of the event slice, so exports are as
//! deterministic as the trace itself — `fig7_timeline` commits its JSONL
//! output to `results/` and `scripts/verify.sh` diffs it like the CSVs.
//! JSON is hand-rolled (the workspace is hermetic; no serde): every payload
//! is an integer, bool or a known `&'static str` name, so quoting only has
//! to handle the free-form crash-dump context string.

use crate::{Event, EventKind, GcCause, GcKind};

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Kind-specific JSON fields (without the common seq/t_ns prefix).
fn json_fields(kind: &EventKind) -> String {
    let name = kind.name();
    match kind {
        EventKind::GcBegin { gc, cause, old_used_words } => format!(
            "\"kind\":\"{name}\",\"gc\":\"{}\",\"cause\":\"{}\",\"old_used_words\":{old_used_words}",
            gc.name(),
            cause.name()
        ),
        EventKind::GcEnd { gc, old_used_words, old_capacity_words, promoted_h2_words } => format!(
            "\"kind\":\"{name}\",\"gc\":\"{}\",\"old_used_words\":{old_used_words},\
             \"old_capacity_words\":{old_capacity_words},\"promoted_h2_words\":{promoted_h2_words}",
            gc.name()
        ),
        EventKind::PhaseBegin { phase } | EventKind::PhaseEnd { phase } => {
            format!("\"kind\":\"{name}\",\"phase\":\"{}\"", phase.name())
        }
        EventKind::SpanBegin { kind } | EventKind::SpanEnd { kind } => {
            format!("\"kind\":\"{name}\",\"span\":\"{}\"", kind.name())
        }
        EventKind::CardScan { table, cards } => {
            format!("\"kind\":\"{name}\",\"table\":\"{}\",\"cards\":{cards}", table.name())
        }
        EventKind::H2PromoFlush { bytes }
        | EventKind::WriteBack { bytes }
        | EventKind::DeviceRead { bytes }
        | EventKind::DeviceWrite { bytes } => format!("\"kind\":\"{name}\",\"bytes\":{bytes}"),
        EventKind::PageFault { sequential } => {
            format!("\"kind\":\"{name}\",\"sequential\":{sequential}")
        }
        EventKind::PageEvict { writeback } => {
            format!("\"kind\":\"{name}\",\"writeback\":{writeback}")
        }
        EventKind::Oom | EventKind::CrashPoint => format!("\"kind\":\"{name}\""),
        EventKind::FaultInjected { write } => {
            format!("\"kind\":\"{name}\",\"write\":{write}")
        }
        EventKind::IoRetry { attempt } => {
            format!("\"kind\":\"{name}\",\"attempt\":{attempt}")
        }
        EventKind::H2Degraded { enospc } => {
            format!("\"kind\":\"{name}\",\"enospc\":{enospc}")
        }
        EventKind::Recovered { torn_pages, regions } => {
            format!("\"kind\":\"{name}\",\"torn_pages\":{torn_pages},\"regions\":{regions}")
        }
        EventKind::UnitBegin { lane, kind } => {
            format!("\"kind\":\"{name}\",\"unit\":\"{}\",\"lane\":{lane}", kind.name())
        }
        EventKind::UnitEnd { lane, kind, cost_ns } => format!(
            "\"kind\":\"{name}\",\"unit\":\"{}\",\"lane\":{lane},\"cost_ns\":{cost_ns}",
            kind.name()
        ),
        EventKind::LaneBarrier { lanes, units, advance_ns, stall_ns } => format!(
            "\"kind\":\"{name}\",\"lanes\":{lanes},\"units\":{units},\
             \"advance_ns\":{advance_ns},\"stall_ns\":{stall_ns}"
        ),
        EventKind::SliceBegin { phase } => {
            format!("\"kind\":\"{name}\",\"phase\":\"{}\"", phase.name())
        }
        EventKind::SliceEnd { phase, units } => {
            format!("\"kind\":\"{name}\",\"phase\":\"{}\",\"units\":{units}", phase.name())
        }
        EventKind::WriteBarrierRemember { root } => {
            format!("\"kind\":\"{name}\",\"root\":{root}")
        }
        EventKind::DeviceQueued { wait_ns } => {
            format!("\"kind\":\"{name}\",\"wait_ns\":{wait_ns}")
        }
        EventKind::TenantSched { tenant, admitted } => {
            format!("\"kind\":\"{name}\",\"tenant\":{tenant},\"admitted\":{admitted}")
        }
        EventKind::Pretenure { label, words } => {
            format!("\"kind\":\"{name}\",\"label\":{label},\"words\":{words}")
        }
        EventKind::PlacementDecision { rdd, partition, choice } => format!(
            "\"kind\":\"{name}\",\"rdd\":{rdd},\"partition\":{partition},\"choice\":\"{}\"",
            crate::PLACEMENT_NAMES[*choice as usize]
        ),
        EventKind::BlockSerde { deser, bytes } => {
            format!("\"kind\":\"{name}\",\"deser\":{deser},\"bytes\":{bytes}")
        }
        EventKind::QueryBegin { session, kind } => format!(
            "\"kind\":\"{name}\",\"session\":{session},\"op\":\"{}\"",
            crate::QUERY_OP_NAMES[*kind as usize]
        ),
        EventKind::QueryEnd { session, rows } => {
            format!("\"kind\":\"{name}\",\"session\":{session},\"rows\":{rows}")
        }
        EventKind::IndexProbe { runs, hits } => {
            format!("\"kind\":\"{name}\",\"runs\":{runs},\"hits\":{hits}")
        }
    }
}

/// One event as a single JSON object (no trailing newline).
pub fn to_json(event: &Event) -> String {
    format!(
        "{{\"seq\":{},\"t_ns\":{},{}}}",
        event.seq,
        event.t_ns,
        json_fields(&event.kind)
    )
}

/// Events as JSONL, one object per line, trailing newline included when
/// non-empty.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&to_json(e));
        out.push('\n');
    }
    out
}

/// CSV header matching [`to_csv_rows`].
pub const CSV_HEADER: &str = "seq,t_ns,kind,detail,a,b";

/// Events as generic CSV rows: `seq,t_ns,kind,detail,a,b` where `detail` is
/// the kind-specific name (gc/phase/span/table) and `a`,`b` the numeric or
/// boolean payloads (empty when absent).
pub fn to_csv_rows(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            let (detail, a, b): (&str, String, String) = match &e.kind {
                EventKind::GcBegin { gc, cause, old_used_words } => {
                    (gc.name(), cause.name().to_string(), old_used_words.to_string())
                }
                EventKind::GcEnd { gc, old_used_words, old_capacity_words, .. } => {
                    (gc.name(), old_used_words.to_string(), old_capacity_words.to_string())
                }
                EventKind::PhaseBegin { phase } | EventKind::PhaseEnd { phase } => {
                    (phase.name(), String::new(), String::new())
                }
                EventKind::SpanBegin { kind } | EventKind::SpanEnd { kind } => {
                    (kind.name(), String::new(), String::new())
                }
                EventKind::CardScan { table, cards } => {
                    (table.name(), cards.to_string(), String::new())
                }
                EventKind::H2PromoFlush { bytes }
                | EventKind::WriteBack { bytes }
                | EventKind::DeviceRead { bytes }
                | EventKind::DeviceWrite { bytes } => ("", bytes.to_string(), String::new()),
                EventKind::PageFault { sequential } => ("", sequential.to_string(), String::new()),
                EventKind::PageEvict { writeback } => ("", writeback.to_string(), String::new()),
                EventKind::Oom | EventKind::CrashPoint => ("", String::new(), String::new()),
                EventKind::FaultInjected { write } => ("", write.to_string(), String::new()),
                EventKind::IoRetry { attempt } => ("", attempt.to_string(), String::new()),
                EventKind::H2Degraded { enospc } => ("", enospc.to_string(), String::new()),
                EventKind::Recovered { torn_pages, regions } => {
                    ("", torn_pages.to_string(), regions.to_string())
                }
                EventKind::UnitBegin { lane, kind } => {
                    (kind.name(), lane.to_string(), String::new())
                }
                EventKind::UnitEnd { lane, kind, cost_ns } => {
                    (kind.name(), lane.to_string(), cost_ns.to_string())
                }
                // The generic CSV has two payload slots; keep the unit count
                // and the clock advance, the JSONL export carries the rest.
                EventKind::LaneBarrier { units, advance_ns, .. } => {
                    ("barrier", units.to_string(), advance_ns.to_string())
                }
                EventKind::SliceBegin { phase } => (phase.name(), String::new(), String::new()),
                EventKind::SliceEnd { phase, units } => {
                    (phase.name(), units.to_string(), String::new())
                }
                EventKind::WriteBarrierRemember { root } => ("", root.to_string(), String::new()),
                EventKind::DeviceQueued { wait_ns } => ("", wait_ns.to_string(), String::new()),
                EventKind::TenantSched { tenant, admitted } => {
                    ("", tenant.to_string(), admitted.to_string())
                }
                EventKind::Pretenure { label, words } => {
                    ("", label.to_string(), words.to_string())
                }
                // Two payload slots: keep the block coordinates; the JSONL
                // export carries the decision name.
                EventKind::PlacementDecision { rdd, partition, choice } => (
                    crate::PLACEMENT_NAMES[*choice as usize],
                    rdd.to_string(),
                    partition.to_string(),
                ),
                EventKind::BlockSerde { deser, bytes } => {
                    ("", deser.to_string(), bytes.to_string())
                }
                // Two payload slots: keep session + the second field; the
                // JSONL export carries the op name.
                EventKind::QueryBegin { session, kind } => (
                    crate::QUERY_OP_NAMES[*kind as usize],
                    session.to_string(),
                    String::new(),
                ),
                EventKind::QueryEnd { session, rows } => {
                    ("", session.to_string(), rows.to_string())
                }
                EventKind::IndexProbe { runs, hits } => {
                    ("", runs.to_string(), hits.to_string())
                }
            };
            format!("{},{},{},{},{},{}", e.seq, e.t_ns, e.kind.name(), detail, a, b)
        })
        .collect()
}

/// Only the GC-attribution events (see [`EventKind::is_gc`]).
pub fn gc_only(events: &[Event]) -> Vec<Event> {
    events.iter().copied().filter(|e| e.kind.is_gc()).collect()
}

/// One reconstructed collection: a paired `GcBegin`/`GcEnd`.
///
/// This carries exactly the fields the runtime's old bespoke `GcEvent` log
/// kept, so timeline consumers (fig7) can reproduce their output
/// byte-identically from the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcCycle {
    pub gc: GcKind,
    pub cause: GcCause,
    pub start_ns: u64,
    pub duration_ns: u64,
    pub old_used_before: u64,
    pub old_used_after: u64,
    pub old_capacity: u64,
    pub promoted_h2_words: u64,
}

/// Pairs `GcBegin`/`GcEnd` events into [`GcCycle`]s, ordered by completion
/// time (the order the old per-GC log recorded them in). Unmatched begins
/// (e.g. a collection aborted by OOM) produce no cycle; an end without a
/// begin (ring overflow ate it) is skipped.
pub fn gc_cycles(events: &[Event]) -> Vec<GcCycle> {
    let mut open: [Vec<(u64, GcCause, u64)>; 2] = [Vec::new(), Vec::new()];
    let mut out = Vec::new();
    for e in events {
        match e.kind {
            EventKind::GcBegin { gc, cause, old_used_words } => {
                let slot = (gc == GcKind::Major) as usize;
                open[slot].push((e.t_ns, cause, old_used_words));
            }
            EventKind::GcEnd { gc, old_used_words, old_capacity_words, promoted_h2_words } => {
                let slot = (gc == GcKind::Major) as usize;
                if let Some((start_ns, cause, before)) = open[slot].pop() {
                    out.push(GcCycle {
                        gc,
                        cause,
                        start_ns,
                        duration_ns: e.t_ns.saturating_sub(start_ns),
                        old_used_before: before,
                        old_used_after: old_used_words,
                        old_capacity: old_capacity_words,
                        promoted_h2_words,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CardTableKind, GcPhase};

    fn e(seq: u64, t_ns: u64, kind: EventKind) -> Event {
        Event { seq, t_ns, kind }
    }

    #[test]
    fn jsonl_is_stable_and_line_per_event() {
        let events = [
            e(0, 5, EventKind::GcBegin { gc: GcKind::Minor, cause: GcCause::AllocFailure, old_used_words: 3 }),
            e(1, 9, EventKind::CardScan { table: CardTableKind::H1, cards: 2 }),
            e(2, 11, EventKind::PageFault { sequential: true }),
        ];
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"t_ns\":5,\"kind\":\"gc_begin\",\"gc\":\"minor\",\
             \"cause\":\"alloc_failure\",\"old_used_words\":3}"
        );
        assert_eq!(lines[1], "{\"seq\":1,\"t_ns\":9,\"kind\":\"card_scan\",\"table\":\"h1\",\"cards\":2}");
        assert_eq!(lines[2], "{\"seq\":2,\"t_ns\":11,\"kind\":\"page_fault\",\"sequential\":true}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let events = [
            e(0, 1, EventKind::DeviceWrite { bytes: 4096 }),
            e(1, 2, EventKind::PhaseBegin { phase: GcPhase::Mark }),
        ];
        for row in to_csv_rows(&events) {
            assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
        }
    }

    #[test]
    fn gc_cycles_pair_in_completion_order() {
        let events = [
            e(0, 10, EventKind::GcBegin { gc: GcKind::Minor, cause: GcCause::AllocFailure, old_used_words: 100 }),
            e(1, 30, EventKind::GcEnd { gc: GcKind::Minor, old_used_words: 120, old_capacity_words: 1000, promoted_h2_words: 0 }),
            e(2, 50, EventKind::GcBegin { gc: GcKind::Major, cause: GcCause::PromotionGuarantee, old_used_words: 900 }),
            e(3, 90, EventKind::GcEnd { gc: GcKind::Major, old_used_words: 400, old_capacity_words: 1000, promoted_h2_words: 64 }),
            // aborted: begin without end
            e(4, 95, EventKind::GcBegin { gc: GcKind::Major, cause: GcCause::LargeAlloc, old_used_words: 999 }),
        ];
        let cycles = gc_cycles(&events);
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0].gc, GcKind::Minor);
        assert_eq!(cycles[0].duration_ns, 20);
        assert_eq!(cycles[0].old_used_before, 100);
        assert_eq!(cycles[0].old_used_after, 120);
        assert_eq!(cycles[1].gc, GcKind::Major);
        assert_eq!(cycles[1].cause, GcCause::PromotionGuarantee);
        assert_eq!(cycles[1].promoted_h2_words, 64);
    }

    #[test]
    fn gc_only_filters_device_noise() {
        let events = [
            e(0, 1, EventKind::DeviceRead { bytes: 8 }),
            e(1, 2, EventKind::Oom),
            e(2, 3, EventKind::PageEvict { writeback: true }),
            e(3, 4, EventKind::H2PromoFlush { bytes: 512 }),
        ];
        let gc = gc_only(&events);
        assert_eq!(gc.len(), 2);
        assert_eq!(gc[0].kind, EventKind::Oom);
        assert_eq!(gc[1].kind, EventKind::H2PromoFlush { bytes: 512 });
    }
}
