//! `teraheap-obs` — a JFR-style flight recorder for the TeraHeap simulator.
//!
//! Every component that shares a `SimClock` (the heap, both GC paths, the H2
//! promotion pipeline, `MmapSim`, the device layer and the framework shims)
//! reports what it is doing through one [`Tracer`]: a fixed-capacity ring
//! buffer of typed, timestamped [`Event`]s plus cheap per-class counters and
//! per-span duration histograms.
//!
//! The recorder *observes* simulated time, it never advances it: emitting an
//! event reads the clock that the caller already charged, so enabling or
//! disabling tracing cannot change a single simulated nanosecond. That is the
//! PR 2 determinism invariant and it is pinned by
//! `crates/runtime/tests/trace_equivalence.rs`.
//!
//! Layers:
//! - [`Event`] / [`EventKind`]: the typed taxonomy (GC begin/end with cause,
//!   GC phases, card scans, H2 promotion flushes, page faults/evictions/
//!   write-backs, device reads/writes, mutator spans, OOM).
//! - [`Tracer`]: level-gated sink. `Off` drops everything, `Counters` keeps
//!   the per-class counters and span histograms, `Full` (the default) also
//!   records events into the ring buffer.
//! - [`timeline`]: deterministic JSONL/CSV exporters and the
//!   [`timeline::gc_cycles`] pairing used by `fig7_timeline`.
//! - [`Tracer::crash_dump`]: writes the last events as JSONL when the runtime
//!   hits an OOM, gated by `TERAHEAP_OBS_DUMP` so default runs stay quiet.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use teraheap_util::sync::Mutex;

pub mod timeline;

/// Simulated-time cost categories.
///
/// This is the unit of accounting for the whole simulator: `SimClock` keeps
/// one counter per category and the figure drivers collapse them into the
/// paper's four-component breakdown. It lives here (rather than in
/// `teraheap-storage`, which re-exports it) so that events and charge
/// counters can name categories without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Application work: graph traversal, joins, ML kernels.
    Mutator,
    /// Serialization/deserialization CPU cost (the S/D component).
    SerDe,
    /// Block-device transfer and page-cache management time.
    Io,
    /// Young-generation collections.
    MinorGc,
    /// Full-heap collections (and H2 promotion CPU cost).
    MajorGc,
}

impl Category {
    /// Number of categories (array dimension for per-category state).
    pub const COUNT: usize = 5;

    /// All categories, in fixed order (matches [`Category::index`]).
    pub const ALL: [Category; Category::COUNT] = [
        Category::Mutator,
        Category::SerDe,
        Category::Io,
        Category::MinorGc,
        Category::MajorGc,
    ];

    /// Dense index of this category, `0..COUNT`.
    pub fn index(self) -> usize {
        match self {
            Category::Mutator => 0,
            Category::SerDe => 1,
            Category::Io => 2,
            Category::MinorGc => 3,
            Category::MajorGc => 4,
        }
    }

    /// Short lowercase name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            Category::Mutator => "mutator",
            Category::SerDe => "serde",
            Category::Io => "io",
            Category::MinorGc => "minor_gc",
            Category::MajorGc => "major_gc",
        }
    }
}

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Record nothing; every emit is a cheap early return.
    Off = 0,
    /// Keep per-class counters and span histograms, but no ring events.
    Counters = 1,
    /// Counters plus the full event ring (the default).
    Full = 2,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Counters,
            _ => Level::Full,
        }
    }

    /// Parses `TERAHEAP_OBS` (`off`/`counters`/`full`, or `0`/`1`/`2`).
    /// Unset or unrecognised values mean [`Level::Full`]: tracing is on by
    /// default, which is exactly what the determinism suite exercises.
    pub fn from_env() -> Level {
        match std::env::var("TERAHEAP_OBS").as_deref() {
            Ok("off") | Ok("0") => Level::Off,
            Ok("counters") | Ok("1") => Level::Counters,
            _ => Level::Full,
        }
    }
}

/// Which collection a GC event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    Minor,
    Major,
}

impl GcKind {
    pub fn name(self) -> &'static str {
        match self {
            GcKind::Minor => "minor",
            GcKind::Major => "major",
        }
    }
}

/// Why a collection was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcCause {
    /// Eden could not satisfy an ordinary allocation.
    AllocFailure,
    /// An allocation too large for eden went straight to the old generation.
    LargeAlloc,
    /// The old generation could not guarantee a worst-case minor promotion.
    PromotionGuarantee,
    /// Eden was still too full after a collection, forcing a full GC.
    EdenFullAfterGc,
    /// An explicit `gc_minor`/`gc_major` request (tests, benchmarks).
    Explicit,
    /// The incremental collector started a cycle early, on old-gen occupancy,
    /// so marking can finish before the promotion guarantee would force a
    /// stop-world collection.
    Incremental,
}

impl GcCause {
    pub fn name(self) -> &'static str {
        match self {
            GcCause::AllocFailure => "alloc_failure",
            GcCause::LargeAlloc => "large_alloc",
            GcCause::PromotionGuarantee => "promotion_guarantee",
            GcCause::EdenFullAfterGc => "eden_full_after_gc",
            GcCause::Explicit => "explicit",
            GcCause::Incremental => "incremental",
        }
    }
}

/// The four phases of the mark-compact major collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPhase {
    Mark,
    Precompact,
    Adjust,
    Compact,
}

impl GcPhase {
    pub fn name(self) -> &'static str {
        match self {
            GcPhase::Mark => "mark",
            GcPhase::Precompact => "precompact",
            GcPhase::Adjust => "adjust",
            GcPhase::Compact => "compact",
        }
    }

    fn index(self) -> usize {
        match self {
            GcPhase::Mark => 0,
            GcPhase::Precompact => 1,
            GcPhase::Adjust => 2,
            GcPhase::Compact => 3,
        }
    }
}

/// Mutator-side spans opened through the heap/clock span API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One framework stage / superstep / iteration of application work.
    Stage,
    /// A shuffle exchange (serialization + transfer accounting).
    Shuffle,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Stage => "stage",
            SpanKind::Shuffle => "shuffle",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::Stage => 0,
            SpanKind::Shuffle => 1,
        }
    }
}

/// Which card table a card-scan event covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardTableKind {
    /// H1 old-generation dirty cards (old→young refs, minor GC).
    H1,
    /// H2 cards scanned during minor GC (H2→H1 refs into the young gen).
    H2Minor,
    /// H2 cards scanned during major-GC marking.
    H2Major,
}

impl CardTableKind {
    pub fn name(self) -> &'static str {
        match self {
            CardTableKind::H1 => "h1",
            CardTableKind::H2Minor => "h2_minor",
            CardTableKind::H2Major => "h2_major",
        }
    }
}

/// The kinds of schedulable GC work units the work-unit plane dispatches
/// (DESIGN.md §11). Minor GC uses the scavenge kinds, major GC the
/// mark/compact kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkUnitKind {
    /// A strip of GC roots scanned during scavenge or marking.
    RootStrip,
    /// A stripe of dirty H1 old-gen cards scanned for old→young refs.
    H1CardStripe,
    /// A chunk of H2 cards scanned for H2→H1 refs (minor or major).
    H2CardChunk,
    /// A packet drained from the gray worklist (Cheney scan or mark stack).
    GrayPacket,
    /// The serial H2-candidate selection step at the end of marking.
    CandidateSelect,
    /// The serial H2 address-assignment step of precompaction.
    H2Assign,
    /// A chunk of live objects assigned forwarding addresses (precompact).
    PlanChunk,
    /// A chunk of live objects whose reference slots are rewritten (adjust).
    AdjustChunk,
    /// A chunk of recorded backward (H2→H1) slots re-pointed after adjust.
    BackwardFix,
    /// A chunk of live objects copied/promoted during compaction.
    CompactChunk,
}

impl WorkUnitKind {
    pub fn name(self) -> &'static str {
        match self {
            WorkUnitKind::RootStrip => "root_strip",
            WorkUnitKind::H1CardStripe => "h1_card_stripe",
            WorkUnitKind::H2CardChunk => "h2_card_chunk",
            WorkUnitKind::GrayPacket => "gray_packet",
            WorkUnitKind::CandidateSelect => "candidate_select",
            WorkUnitKind::H2Assign => "h2_assign",
            WorkUnitKind::PlanChunk => "plan_chunk",
            WorkUnitKind::AdjustChunk => "adjust_chunk",
            WorkUnitKind::BackwardFix => "backward_fix",
            WorkUnitKind::CompactChunk => "compact_chunk",
        }
    }
}

/// The typed event taxonomy. Every variant is a coarse operation — there are
/// deliberately no per-word or per-TLB-hit events, so a full trace of a
/// figure run stays in the tens of thousands of entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A collection starts. `old_used_words` is the old-gen occupancy before.
    GcBegin {
        gc: GcKind,
        cause: GcCause,
        old_used_words: u64,
    },
    /// A collection finished. `promoted_h2_words` is the H2 growth during it.
    GcEnd {
        gc: GcKind,
        old_used_words: u64,
        old_capacity_words: u64,
        promoted_h2_words: u64,
    },
    /// A major-GC phase starts.
    PhaseBegin { phase: GcPhase },
    /// A major-GC phase ends.
    PhaseEnd { phase: GcPhase },
    /// A mutator-side span opens (see [`SpanKind`]).
    SpanBegin { kind: SpanKind },
    /// A mutator-side span closes.
    SpanEnd { kind: SpanKind },
    /// One card-table scan pass; `cards` is how many cards were visited.
    CardScan { table: CardTableKind, cards: u64 },
    /// The H2 promotion buffer flushed `bytes` to the device.
    H2PromoFlush { bytes: u64 },
    /// An mmap page fault (page not resident); `sequential` means the
    /// readahead window recognised a streaming access.
    PageFault { sequential: bool },
    /// A resident page was evicted; `writeback` means it was dirty.
    PageEvict { writeback: bool },
    /// An msync-style flush wrote `bytes` of dirty pages back.
    WriteBack { bytes: u64 },
    /// The device served a read of `bytes`.
    DeviceRead { bytes: u64 },
    /// The device served a write of `bytes`.
    DeviceWrite { bytes: u64 },
    /// The heap ran out of memory; the crash-dump hook fires alongside this.
    Oom,
    /// The fault-injection plane injected a transient I/O error; `write` is
    /// the direction of the faulted operation.
    FaultInjected { write: bool },
    /// One bounded-backoff retry of a faulted I/O operation (`attempt` is
    /// 1-based); the backoff nanoseconds were charged before this event.
    IoRetry { attempt: u64 },
    /// H2 entered degraded (`H2Unavailable`) mode: promotions park in the
    /// old generation from here on, matching the paper's no-H2 baseline.
    /// `enospc` distinguishes backing-file exhaustion from write-retry
    /// exhaustion.
    H2Degraded { enospc: bool },
    /// The injected crash point fired mid-write-back; the durable image may
    /// hold torn pages from here on.
    CrashPoint,
    /// `H2::recover()` completed: `torn_pages` checksum mismatches were
    /// detected and `regions` regions restored from the durable image.
    Recovered { torn_pages: u64, regions: u64 },
    /// A GC work unit was dispatched to lane `lane` (work-unit plane).
    UnitBegin { lane: u32, kind: WorkUnitKind },
    /// The dispatched unit finished; `cost_ns` is what it charged its lane.
    UnitEnd { lane: u32, kind: WorkUnitKind, cost_ns: u64 },
    /// A phase barrier: `lanes` lanes synchronised after `units` units, the
    /// clock advanced by the critical path `advance_ns`, and non-critical
    /// lanes idled for `stall_ns` total.
    LaneBarrier { lanes: u32, units: u64, advance_ns: u64, stall_ns: u64 },
    /// An incremental major-GC slice starts; `phase` is the phase the slice
    /// resumes. The mutator is stopped between `SliceBegin` and `SliceEnd`,
    /// so the pair's duration is one observable pause.
    SliceBegin { phase: GcPhase },
    /// The incremental slice yielded back to the mutator after dispatching
    /// `units` work units.
    SliceEnd { phase: GcPhase, units: u64 },
    /// The mutator write barrier remembered a reference overwritten between
    /// marking slices (snapshot-at-the-beginning deletion barrier); `root`
    /// distinguishes a released GC root from an object-field overwrite.
    WriteBarrierRemember { root: bool },
    /// A device request queued behind other tenants of a shared device
    /// (server plane, DESIGN.md §13): the arbiter delayed it `wait_ns`
    /// before service, charged to the waiting tenant.
    DeviceQueued { wait_ns: u64 },
    /// A server scheduling decision for tenant `tenant`: `admitted` is
    /// false when the admission policy deferred the tenant's burst.
    TenantSched { tenant: u32, admitted: bool },
    /// Lifetime-profiled pretenuring placed a `words`-word object straight
    /// into H2 under allocation site `label` (adaptive placement plane).
    Pretenure { label: u64, words: u64 },
    /// The online cost model decided where partition `(rdd, partition)` is
    /// cached: `choice` indexes `PLACEMENT_NAMES` (0 on-heap, 1 serialized,
    /// 2 H2).
    PlacementDecision { rdd: u64, partition: u32, choice: u8 },
    /// A block-manager serialize (`deser == false`) or deserialize
    /// (`deser == true`) of `bytes` bytes — the one source of truth the
    /// cost model, `RunReport` and the timeline exporter all read.
    BlockSerde { deser: bool, bytes: u64 },
    /// A query-plane operation began on logical client session `session`;
    /// `kind` indexes [`QUERY_OP_NAMES`] (0 point lookup, 1 range scan,
    /// 2 aggregate).
    QueryBegin { session: u32, kind: u8 },
    /// The query-plane operation on `session` completed having matched
    /// `rows` rows (the `QueryEnd - QueryBegin` ns delta is the op's
    /// service latency).
    QueryEnd { session: u32, rows: u64 },
    /// A secondary-index probe consulted `runs` sorted chunk runs and
    /// yielded `hits` candidate rows (query plane).
    IndexProbe { runs: u32, hits: u64 },
}

/// Display names for [`EventKind::PlacementDecision::choice`].
pub const PLACEMENT_NAMES: [&str; 3] = ["on_heap", "serialized", "h2"];

/// Display names for [`EventKind::QueryBegin::kind`].
pub const QUERY_OP_NAMES: [&str; 3] = ["point_lookup", "range_scan", "aggregate"];

/// Number of distinct event classes (counter array dimension).
pub const CLASS_COUNT: usize = 33;

/// Number of span slots tracked by the duration histograms: minor/major GC,
/// the four major phases, the [`SpanKind`]s, then incremental GC slices.
pub const SPAN_COUNT: usize = 9;

/// Display names for the span slots, indexed like the histograms.
pub const SPAN_NAMES: [&str; SPAN_COUNT] = [
    "minor_gc",
    "major_gc",
    "major_mark",
    "major_precompact",
    "major_adjust",
    "major_compact",
    "stage",
    "shuffle",
    "major_slice",
];

impl EventKind {
    /// Short lowercase name used by the exporters and counter listing.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::GcBegin { .. } => "gc_begin",
            EventKind::GcEnd { .. } => "gc_end",
            EventKind::PhaseBegin { .. } => "phase_begin",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::CardScan { .. } => "card_scan",
            EventKind::H2PromoFlush { .. } => "h2_promo_flush",
            EventKind::PageFault { .. } => "page_fault",
            EventKind::PageEvict { .. } => "page_evict",
            EventKind::WriteBack { .. } => "write_back",
            EventKind::DeviceRead { .. } => "device_read",
            EventKind::DeviceWrite { .. } => "device_write",
            EventKind::Oom => "oom",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::IoRetry { .. } => "io_retry",
            EventKind::H2Degraded { .. } => "h2_degraded",
            EventKind::CrashPoint => "crash_point",
            EventKind::Recovered { .. } => "recovered",
            EventKind::UnitBegin { .. } => "unit_begin",
            EventKind::UnitEnd { .. } => "unit_end",
            EventKind::LaneBarrier { .. } => "lane_barrier",
            EventKind::SliceBegin { .. } => "slice_begin",
            EventKind::SliceEnd { .. } => "slice_end",
            EventKind::WriteBarrierRemember { .. } => "write_barrier_remember",
            EventKind::DeviceQueued { .. } => "device_queued",
            EventKind::TenantSched { .. } => "tenant_sched",
            EventKind::Pretenure { .. } => "pretenure",
            EventKind::PlacementDecision { .. } => "placement_decision",
            EventKind::BlockSerde { .. } => "block_serde",
            EventKind::QueryBegin { .. } => "query_begin",
            EventKind::QueryEnd { .. } => "query_end",
            EventKind::IndexProbe { .. } => "index_probe",
        }
    }

    /// Dense class index for the per-class counters.
    pub fn class(&self) -> usize {
        match self {
            EventKind::GcBegin { .. } => 0,
            EventKind::GcEnd { .. } => 1,
            EventKind::PhaseBegin { .. } => 2,
            EventKind::PhaseEnd { .. } => 3,
            EventKind::SpanBegin { .. } => 4,
            EventKind::SpanEnd { .. } => 5,
            EventKind::CardScan { .. } => 6,
            EventKind::H2PromoFlush { .. } => 7,
            EventKind::PageFault { .. } => 8,
            EventKind::PageEvict { .. } => 9,
            EventKind::WriteBack { .. } => 10,
            EventKind::DeviceRead { .. } => 11,
            EventKind::DeviceWrite { .. } => 12,
            EventKind::Oom => 13,
            EventKind::FaultInjected { .. } => 14,
            EventKind::IoRetry { .. } => 15,
            EventKind::H2Degraded { .. } => 16,
            EventKind::CrashPoint => 17,
            EventKind::Recovered { .. } => 18,
            EventKind::UnitBegin { .. } => 19,
            EventKind::UnitEnd { .. } => 20,
            EventKind::LaneBarrier { .. } => 21,
            EventKind::SliceBegin { .. } => 22,
            EventKind::SliceEnd { .. } => 23,
            EventKind::WriteBarrierRemember { .. } => 24,
            EventKind::DeviceQueued { .. } => 25,
            EventKind::TenantSched { .. } => 26,
            EventKind::Pretenure { .. } => 27,
            EventKind::PlacementDecision { .. } => 28,
            EventKind::BlockSerde { .. } => 29,
            EventKind::QueryBegin { .. } => 30,
            EventKind::QueryEnd { .. } => 31,
            EventKind::IndexProbe { .. } => 32,
        }
    }

    /// Display names for the event classes, indexed like [`EventKind::class`].
    pub const CLASS_NAMES: [&'static str; CLASS_COUNT] = [
        "gc_begin",
        "gc_end",
        "phase_begin",
        "phase_end",
        "span_begin",
        "span_end",
        "card_scan",
        "h2_promo_flush",
        "page_fault",
        "page_evict",
        "write_back",
        "device_read",
        "device_write",
        "oom",
        "fault_injected",
        "io_retry",
        "h2_degraded",
        "crash_point",
        "recovered",
        "unit_begin",
        "unit_end",
        "lane_barrier",
        "slice_begin",
        "slice_end",
        "write_barrier_remember",
        "device_queued",
        "tenant_sched",
        "pretenure",
        "placement_decision",
        "block_serde",
        "query_begin",
        "query_end",
        "index_probe",
    ];

    /// If this event opens or closes a span, returns `(slot, is_begin)`
    /// where `slot` indexes [`SPAN_NAMES`].
    pub fn span_edge(&self) -> Option<(usize, bool)> {
        match self {
            EventKind::GcBegin { gc: GcKind::Minor, .. } => Some((0, true)),
            EventKind::GcEnd { gc: GcKind::Minor, .. } => Some((0, false)),
            EventKind::GcBegin { gc: GcKind::Major, .. } => Some((1, true)),
            EventKind::GcEnd { gc: GcKind::Major, .. } => Some((1, false)),
            EventKind::PhaseBegin { phase } => Some((2 + phase.index(), true)),
            EventKind::PhaseEnd { phase } => Some((2 + phase.index(), false)),
            EventKind::SpanBegin { kind } => Some((6 + kind.index(), true)),
            EventKind::SpanEnd { kind } => Some((6 + kind.index(), false)),
            EventKind::SliceBegin { .. } => Some((8, true)),
            EventKind::SliceEnd { .. } => Some((8, false)),
            _ => None,
        }
    }

    /// True for GC-attribution events (collections, phases, card scans,
    /// promotion flushes, OOM) — the subset `fig7_timeline` exports.
    pub fn is_gc(&self) -> bool {
        matches!(
            self,
            EventKind::GcBegin { .. }
                | EventKind::GcEnd { .. }
                | EventKind::PhaseBegin { .. }
                | EventKind::PhaseEnd { .. }
                | EventKind::CardScan { .. }
                | EventKind::H2PromoFlush { .. }
                | EventKind::Oom
                | EventKind::H2Degraded { .. }
                | EventKind::CrashPoint
                | EventKind::Recovered { .. }
                | EventKind::LaneBarrier { .. }
                | EventKind::SliceBegin { .. }
                | EventKind::SliceEnd { .. }
        )
    }
}

/// One recorded event: a global sequence number, the simulated-time instant
/// it was observed at, and the typed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub seq: u64,
    pub t_ns: u64,
    pub kind: EventKind,
}

/// Default ring capacity (events). Figure drivers that want a full GC
/// timeline raise it via `HeapConfig::obs_events`.
pub const DEFAULT_RING_EVENTS: usize = 64 * 1024;

/// Aggregated duration statistics for one span slot, in simulated ns.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    pub name: &'static str,
    /// Completed begin/end pairs.
    pub count: usize,
    /// Begins without a matching end at snapshot time.
    pub open: usize,
    pub mean_ns: f64,
    pub p50_ns: f64,
    pub p99_ns: f64,
    pub p999_ns: f64,
    pub max_ns: u64,
}

struct Inner {
    ring: std::collections::VecDeque<Event>,
    /// Per-slot stack of open span start times (simulated ns).
    open: [Vec<u64>; SPAN_COUNT],
    /// Per-slot completed span durations (simulated ns).
    durations: [Vec<u64>; SPAN_COUNT],
}

impl Inner {
    fn new() -> Inner {
        Inner {
            ring: std::collections::VecDeque::new(),
            open: std::array::from_fn(|_| Vec::new()),
            durations: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// The flight recorder. One `Tracer` lives inside each `SimClock`, so every
/// component that shares the clock shares the recorder.
///
/// Thread-safety: counters are relaxed atomics; the ring and span state sit
/// behind a mutex taken only on coarse events. The parallel bench driver
/// gives every job its own clock (and thus its own tracer), so traces are
/// per-run and deterministic regardless of thread count.
pub struct Tracer {
    level: AtomicU8,
    capacity: AtomicUsize,
    seq: AtomicU64,
    dropped: AtomicU64,
    /// Events emitted per class (kept even when the ring overflows).
    counts: [AtomicU64; CLASS_COUNT],
    /// `SimClock::charge` calls per category — the cheap "charging routes
    /// through the tracer" hook; no ring traffic on the per-word hot path.
    charges: [AtomicU64; Category::COUNT],
    inner: Mutex<Inner>,
}

impl Default for Tracer {
    /// Environment-configured tracer (`TERAHEAP_OBS`), default-full.
    fn default() -> Tracer {
        Tracer::with_level(Level::from_env())
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("level", &self.level())
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Tracer {
    /// A tracer at an explicit level with the default ring capacity.
    pub fn with_level(level: Level) -> Tracer {
        Tracer {
            level: AtomicU8::new(level as u8),
            capacity: AtomicUsize::new(DEFAULT_RING_EVENTS),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            charges: std::array::from_fn(|_| AtomicU64::new(0)),
            inner: Mutex::new(Inner::new()),
        }
    }

    /// Current recording level.
    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Changes the recording level (applies to subsequent events).
    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// True when any recording is happening — callers can skip computing
    /// timestamps/payloads entirely when the tracer is off.
    pub fn enabled(&self) -> bool {
        self.level() != Level::Off
    }

    /// Resizes the ring (oldest events are dropped if shrinking).
    pub fn set_capacity(&self, events: usize) {
        let cap = events.max(1);
        self.capacity.store(cap, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        while inner.ring.len() > cap {
            inner.ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Records one event observed at simulated instant `t_ns`.
    ///
    /// This never touches the clock: the timestamp is whatever the caller
    /// already read, so tracing cannot perturb simulated time.
    pub fn emit(&self, t_ns: u64, kind: EventKind) {
        let level = self.level();
        if level == Level::Off {
            return;
        }
        self.counts[kind.class()].fetch_add(1, Ordering::Relaxed);
        let edge = kind.span_edge();
        if level < Level::Full && edge.is_none() {
            return;
        }
        let mut inner = self.inner.lock();
        match edge {
            Some((slot, true)) => inner.open[slot].push(t_ns),
            Some((slot, false)) => {
                // Tolerate an end without a begin (e.g. the tracer was
                // enabled mid-span); it just doesn't produce a sample.
                if let Some(start) = inner.open[slot].pop() {
                    let d = t_ns.saturating_sub(start);
                    inner.durations[slot].push(d);
                }
            }
            None => {}
        }
        if level == Level::Full {
            let cap = self.capacity.load(Ordering::Relaxed);
            if inner.ring.len() >= cap {
                inner.ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            inner.ring.push_back(Event { seq, t_ns, kind });
        }
    }

    /// Cheap per-category charge accounting, called by `SimClock::charge`.
    ///
    /// This sits on the simulator's hottest path (one call per clock
    /// charge), so it deliberately uses a relaxed load + store instead of a
    /// locked `fetch_add`: concurrent chargers on one clock may lose
    /// increments, which is acceptable for a diagnostic counter (the bench
    /// driver gives every job its own single-threaded clock, where the
    /// count is exact). Never takes the ring mutex.
    #[inline]
    pub fn note_charge(&self, cat: Category) {
        if self.level.load(Ordering::Relaxed) != Level::Off as u8 {
            let c = &self.charges[cat.index()];
            c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        }
    }

    /// Bulk form of [`Tracer::note_charge`]: records `n` charge calls in one
    /// counter update. The bulk access plane uses this so a batched run
    /// advances the per-category charge counters by exactly as much as the
    /// per-word loop it replaces would have.
    #[inline]
    pub fn note_charges(&self, cat: Category, n: u64) {
        if n > 0 && self.level.load(Ordering::Relaxed) != Level::Off as u8 {
            let c = &self.charges[cat.index()];
            c.store(c.load(Ordering::Relaxed) + n, Ordering::Relaxed);
        }
    }

    /// Snapshot of the ring contents, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let inner = self.inner.lock();
        inner.ring.iter().copied().collect()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events emitted (recorded + dropped), i.e. the next seq number.
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Per-class event counts as `(name, count)`, classes with zero included.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        EventKind::CLASS_NAMES
            .iter()
            .zip(self.counts.iter())
            .map(|(name, c)| (*name, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// `SimClock::charge` call counts per category, indexed by
    /// [`Category::index`].
    pub fn charge_counts(&self) -> [u64; Category::COUNT] {
        std::array::from_fn(|i| self.charges[i].load(Ordering::Relaxed))
    }

    /// Duration statistics (p50/p99/p99.9 via `teraheap-util`'s percentile)
    /// for every span slot that saw at least one begin.
    pub fn span_stats(&self) -> Vec<SpanStats> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (slot, name) in SPAN_NAMES.iter().enumerate() {
            let open = inner.open[slot].len();
            let d = &inner.durations[slot];
            if d.is_empty() && open == 0 {
                continue;
            }
            let mut sorted: Vec<f64> = d.iter().map(|&n| n as f64).collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (mean, p50, p99, p999) = if sorted.is_empty() {
                (0.0, 0.0, 0.0, 0.0)
            } else {
                (
                    sorted.iter().sum::<f64>() / sorted.len() as f64,
                    teraheap_util::microbench::percentile(&sorted, 0.50),
                    teraheap_util::microbench::percentile(&sorted, 0.99),
                    teraheap_util::microbench::percentile(&sorted, 0.999),
                )
            };
            out.push(SpanStats {
                name,
                count: d.len(),
                open,
                mean_ns: mean,
                p50_ns: p50,
                p99_ns: p99,
                p999_ns: p999,
                max_ns: d.iter().copied().max().unwrap_or(0),
            });
        }
        out
    }

    /// Clears ring, counters, histograms and sequence numbers (level and
    /// capacity are kept). Paired with `SimClock::reset`.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.ring.clear();
        for v in inner.open.iter_mut() {
            v.clear();
        }
        for v in inner.durations.iter_mut() {
            v.clear();
        }
        drop(inner);
        self.seq.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        for c in self.counts.iter().chain(self.charges.iter()) {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Crash-dump hook: when `TERAHEAP_OBS_DUMP=<path>` is set, appends a
    /// header line plus the last ring events as JSONL to `<path>`. Gated by
    /// the environment (and off by default) because figure runs treat OOM as
    /// an expected data point, and verify runs must stay byte-deterministic.
    ///
    /// Returns how many events were written (0 when disabled or off-level).
    pub fn crash_dump(&self, context: &str) -> usize {
        let Ok(path) = std::env::var("TERAHEAP_OBS_DUMP") else {
            return 0;
        };
        if path.is_empty() || self.level() != Level::Full {
            return 0;
        }
        let events = self.events();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"crash\":{},\"events\":{},\"dropped\":{}}}\n",
            timeline::json_string(context),
            events.len(),
            self.dropped()
        ));
        out.push_str(&timeline::to_jsonl(&events));
        use std::io::Write as _;
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(out.as_bytes()));
        match written {
            Ok(()) => events.len(),
            Err(_) => 0, // best-effort: a failed dump must not mask the OOM
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> EventKind {
        kind
    }

    #[test]
    fn off_level_records_nothing() {
        let t = Tracer::with_level(Level::Off);
        t.emit(10, ev(EventKind::Oom));
        t.note_charge(Category::Mutator);
        assert!(t.events().is_empty());
        assert_eq!(t.counts().iter().map(|(_, c)| c).sum::<u64>(), 0);
        assert_eq!(t.charge_counts(), [0; Category::COUNT]);
    }

    #[test]
    fn counters_level_keeps_stats_but_no_ring() {
        let t = Tracer::with_level(Level::Counters);
        t.emit(0, EventKind::GcBegin { gc: GcKind::Minor, cause: GcCause::AllocFailure, old_used_words: 1 });
        t.emit(7, EventKind::GcEnd { gc: GcKind::Minor, old_used_words: 2, old_capacity_words: 8, promoted_h2_words: 0 });
        t.emit(9, EventKind::PageFault { sequential: false });
        t.note_charge(Category::Io);
        assert!(t.events().is_empty());
        let counts = t.counts();
        assert_eq!(counts[0], ("gc_begin", 1));
        assert_eq!(counts[8], ("page_fault", 1));
        assert_eq!(t.charge_counts()[Category::Io.index()], 1);
        let stats = t.span_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "minor_gc");
        assert_eq!(stats[0].count, 1);
        assert_eq!(stats[0].max_ns, 7);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = Tracer::with_level(Level::Full);
        t.set_capacity(4);
        for i in 0..10u64 {
            t.emit(i, EventKind::DeviceRead { bytes: i });
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.emitted(), 10);
        assert_eq!(events[0].seq, 6);
        assert_eq!(events[3].kind, EventKind::DeviceRead { bytes: 9 });
    }

    #[test]
    fn span_histogram_pairs_begin_end() {
        let t = Tracer::with_level(Level::Full);
        t.emit(100, EventKind::SpanBegin { kind: SpanKind::Stage });
        t.emit(150, EventKind::SpanBegin { kind: SpanKind::Stage });
        t.emit(160, EventKind::SpanEnd { kind: SpanKind::Stage });
        t.emit(400, EventKind::SpanEnd { kind: SpanKind::Stage });
        let stats = t.span_stats();
        let stage = stats.iter().find(|s| s.name == "stage").unwrap();
        assert_eq!(stage.count, 2);
        assert_eq!(stage.open, 0);
        // Durations are 10 (inner) and 300 (outer, LIFO pairing); the
        // nearest-rank p50 of two samples rounds up to the larger one.
        assert_eq!(stage.max_ns, 300);
        assert_eq!(stage.p50_ns, 300.0);
        assert_eq!(stage.mean_ns, 155.0);
    }

    #[test]
    fn clear_resets_everything_but_keeps_config() {
        let t = Tracer::with_level(Level::Full);
        t.set_capacity(8);
        t.emit(1, EventKind::Oom);
        t.note_charge(Category::SerDe);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.emitted(), 0);
        assert_eq!(t.charge_counts(), [0; Category::COUNT]);
        assert_eq!(t.capacity(), 8);
        assert_eq!(t.level(), Level::Full);
    }
}
