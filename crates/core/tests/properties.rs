//! Property-based tests for the H2 mechanisms.
//!
//! These check the safety invariants the paper's design depends on:
//! directional dependency-list liveness never reclaims a reachable region,
//! the union-find group alternative is a conservative over-approximation of
//! it, and the card table never loses a dirty mark.
//!
//! Runs on the in-repo harness (`teraheap_util::proptest_mini`): cases are
//! seeded deterministically, failures shrink to a minimal script and print
//! a `TERAHEAP_PROP_SEED` for replay.

use teraheap_core::{
    Addr, CardState, H2CardTable, Label, LifetimeProfiles, RegionGroups, RegionId, RegionManager,
};
use teraheap_util::proptest_mini::{
    check, range_u64, range_usize, vec_of, CaseResult, Config, Strategy,
};
use teraheap_util::{prop_assert, prop_assert_eq, prop_assume};

/// A scripted region workload: allocations, cross-region references and the
/// set of regions the "H1 roots" reference at GC time.
#[derive(Debug, Clone)]
struct RegionScript {
    allocs: Vec<(u64, usize)>, // (label, words)
    deps: Vec<(usize, usize)>, // indices into allocated objects (from, to)
    h1_marks: Vec<usize>,      // indices of objects referenced from H1
}

fn region_script() -> impl Strategy<Value = RegionScript> {
    (
        vec_of((range_u64(0..6), range_usize(1..64)), 1..40),
        vec_of((range_usize(0..40), range_usize(0..40)), 0..40),
        vec_of(range_usize(0..40), 0..10),
    )
        .prop_map(|(allocs, deps, h1_marks)| RegionScript { allocs, deps, h1_marks })
}

const CASES: u32 = 256;

/// Sweeping never reclaims a region that is (transitively) reachable
/// from an H1-referenced region via dependency edges.
#[test]
fn sweep_never_frees_reachable_region() {
    check(
        "sweep_never_frees_reachable_region",
        &region_script(),
        &Config::with_cases(CASES),
        |script: RegionScript| {
            let mut m = RegionManager::new(256, 64);
            let mut objs: Vec<Addr> = Vec::new();
            for &(label, words) in &script.allocs {
                if let Ok(a) = m.alloc(Label::new(label), words) {
                    objs.push(a);
                }
            }
            prop_assume!(!objs.is_empty());
            // Record dependency edges, also building a reference model.
            let mut edges: Vec<(RegionId, RegionId)> = Vec::new();
            for &(f, t) in &script.deps {
                if f < objs.len() && t < objs.len() {
                    let (rf, rt) = (m.region_of(objs[f]), m.region_of(objs[t]));
                    m.add_dependency(rf, rt);
                    edges.push((rf, rt));
                }
            }
            m.clear_live_bits();
            let mut directly_live: Vec<RegionId> = Vec::new();
            for &i in &script.h1_marks {
                if i < objs.len() {
                    m.mark_live(objs[i]);
                    directly_live.push(m.region_of(objs[i]));
                }
            }
            // Model: compute the set of regions reachable from directly-live
            // ones over the dependency edges.
            let mut reachable: std::collections::HashSet<RegionId> =
                directly_live.iter().copied().collect();
            loop {
                let before = reachable.len();
                for &(f, t) in &edges {
                    if reachable.contains(&f) {
                        reachable.insert(t);
                    }
                }
                if reachable.len() == before {
                    break;
                }
            }
            let freed = {
                m.propagate_liveness();
                m.sweep_dead()
            };
            for rid in freed {
                prop_assert!(
                    !reachable.contains(&rid),
                    "reclaimed region {rid} is reachable from H1"
                );
            }
            CaseResult::Pass
        },
    );
}

/// Union-find group liveness is a superset of directional liveness:
/// anything the dependency-list scheme keeps, the group scheme keeps.
#[test]
fn groups_over_approximate_directional() {
    check(
        "groups_over_approximate_directional",
        &region_script(),
        &Config::with_cases(CASES),
        |script: RegionScript| {
            let mut m = RegionManager::new(256, 64);
            let mut groups = RegionGroups::new(64);
            let mut objs: Vec<Addr> = Vec::new();
            for &(label, words) in &script.allocs {
                if let Ok(a) = m.alloc(Label::new(label), words) {
                    objs.push(a);
                }
            }
            prop_assume!(!objs.is_empty());
            for &(f, t) in &script.deps {
                if f < objs.len() && t < objs.len() {
                    let (rf, rt) = (m.region_of(objs[f]), m.region_of(objs[t]));
                    m.add_dependency(rf, rt);
                    groups.merge(rf, rt);
                }
            }
            m.clear_live_bits();
            let mut h1_ref = vec![false; 64];
            for &i in &script.h1_marks {
                if i < objs.len() {
                    m.mark_live(objs[i]);
                    h1_ref[m.region_of(objs[i]).0 as usize] = true;
                }
            }
            m.propagate_liveness();
            let group_live = groups.group_liveness(&h1_ref);
            for rid in 0..64u32 {
                if m.is_live(RegionId(rid)) {
                    prop_assert!(
                        group_live[rid as usize],
                        "directionally-live region R{rid} must be group-live"
                    );
                }
            }
            CaseResult::Pass
        },
    );
}

/// Whatever sequence of dirty marks the mutator produces, every marked
/// card appears in the minor-GC scan set (the table is conservative).
#[test]
fn card_table_never_loses_dirty_marks() {
    check(
        "card_table_never_loses_dirty_marks",
        &vec_of(range_u64(0..4096), 1..100),
        &Config::with_cases(CASES),
        |offsets: Vec<u64>| {
            let mut t = H2CardTable::new(4096, 64, 256);
            let mut expected = std::collections::HashSet::new();
            for &o in &offsets {
                let addr = Addr::h2_at(o);
                t.mark_dirty(addr);
                expected.insert(t.card_of(addr));
            }
            let scanned: std::collections::HashSet<usize> =
                t.minor_scan_cards().into_iter().collect();
            for c in expected {
                prop_assert!(scanned.contains(&c));
                prop_assert_eq!(t.state(c), CardState::Dirty);
            }
            CaseResult::Pass
        },
    );
}

/// Whatever interleaving of barrier marks and GC state re-derivations hits
/// the table, the maintained noted-card index returns exactly what a full
/// sweep of the byte array would: same cards, same ascending order, for
/// both the minor and the major scan set.
#[test]
fn card_index_matches_full_sweep() {
    // Ops: (card, state-code). Code 0..=3 = set_state(CardState), 4 =
    // mark_dirty via an address in the card, 5 = query (forces the lazy
    // index reconciliation mid-sequence, not just at the end).
    check(
        "card_index_matches_full_sweep",
        &vec_of((range_usize(0..64), range_usize(0..6)), 1..200),
        &Config::with_cases(CASES),
        |ops: Vec<(usize, usize)>| {
            let mut t = H2CardTable::new(4096, 64, 256);
            for &(card, code) in &ops {
                match code {
                    0 => t.set_state(card, CardState::Clean),
                    1 => t.set_state(card, CardState::Dirty),
                    2 => t.set_state(card, CardState::YoungGen),
                    3 => t.set_state(card, CardState::OldGen),
                    4 => t.mark_dirty(Addr::h2_at((card * 64 + 7) as u64)),
                    _ => {
                        let _ = t.minor_scan_cards();
                    }
                }
            }
            // Full-sweep reference over the authoritative byte array.
            let sweep = |pred: &dyn Fn(CardState) -> bool| -> Vec<usize> {
                (0..t.card_count()).filter(|&i| pred(t.state(i))).collect()
            };
            let minor_ref = sweep(&|s| matches!(s, CardState::Dirty | CardState::YoungGen));
            let major_ref = sweep(&|s| s != CardState::Clean);
            prop_assert_eq!(t.minor_scan_cards(), minor_ref);
            prop_assert_eq!(t.major_scan_cards(), major_ref);
            CaseResult::Pass
        },
    );
}

/// One profiler observation: op code, label, words. Op codes: 0 =
/// record_tag, 1 = record_survival, 2 = record_promotion, 3 =
/// record_pretenure.
type ProfileOp = (usize, u64, u64);

fn profile_script() -> impl Strategy<Value = Vec<ProfileOp>> {
    vec_of(
        ((range_usize(0..4), range_u64(0..8)), range_u64(1..4096))
            .prop_map(|((op, label), words)| (op, label, words)),
        1..120,
    )
}

fn apply_profile(script: &[ProfileOp]) -> LifetimeProfiles {
    let mut p = LifetimeProfiles::new();
    p.set_enabled(true);
    for &(op, label, words) in script {
        let l = Label::new(label);
        match op {
            0 => p.record_tag(l, words),
            1 => p.record_survival(l, words),
            2 => p.record_promotion(l, words),
            _ => p.record_pretenure(l, words),
        }
    }
    p
}

/// The lifetime profiler is a pure fold over its observation stream:
/// replaying one script yields bit-identical per-site stats and identical
/// pretenure decisions. This is what makes pretenuring safe to enable in a
/// deterministic simulation.
#[test]
fn lifetime_profiler_replays_identically() {
    check(
        "lifetime_profiler_replays_identically",
        &profile_script(),
        &Config::with_cases(CASES),
        |script: Vec<ProfileOp>| {
            let (a, b) = (apply_profile(&script), apply_profile(&script));
            prop_assert_eq!(a.len(), b.len());
            for ((la, sa), (lb, sb)) in a.sites().zip(b.sites()) {
                prop_assert_eq!(la.id(), lb.id());
                prop_assert_eq!(*sa, *sb);
                prop_assert_eq!(a.should_pretenure(la), b.should_pretenure(lb));
            }
            CaseResult::Pass
        },
    );
}

/// Additional survival evidence never retracts a pretenure decision, and
/// pretenured allocations never dilute it (the decision is sticky).
#[test]
fn pretenure_decision_is_monotone_in_evidence() {
    check(
        "pretenure_decision_is_monotone_in_evidence",
        &(profile_script(), (range_u64(0..8), range_u64(1..4096))),
        &Config::with_cases(CASES),
        |(script, (label, words)): (Vec<ProfileOp>, (u64, u64))| {
            let mut p = apply_profile(&script);
            let l = Label::new(label);
            let before = p.should_pretenure(l);
            p.record_survival(l, words);
            p.record_pretenure(l, words);
            if before {
                prop_assert!(
                    p.should_pretenure(l),
                    "survival evidence or pretenured volume retracted the decision"
                );
            }
            CaseResult::Pass
        },
    );
}

/// H1-referenced region indices plus a rotation offset for the merge order.
type MarkPlan = (Vec<usize>, usize);

/// Group liveness is invariant under the order merges are applied in:
/// forward, reversed and rotated merge sequences classify every region
/// identically. The collector may thus merge site regions in whatever
/// order compaction discovers them.
#[test]
fn group_liveness_is_merge_order_invariant() {
    check(
        "group_liveness_is_merge_order_invariant",
        &(
            vec_of((range_usize(0..32), range_usize(0..32)), 0..48),
            (vec_of(range_usize(0..32), 0..8), range_usize(0..48)),
        ),
        &Config::with_cases(CASES),
        |(merges, (marks, rot)): (Vec<(usize, usize)>, MarkPlan)| {
            let mut h1_ref = vec![false; 32];
            for &m in &marks {
                h1_ref[m] = true;
            }
            let liveness = |order: &[(usize, usize)]| {
                let mut g = RegionGroups::new(32);
                for &(a, b) in order {
                    g.merge(RegionId(a as u32), RegionId(b as u32));
                }
                g.group_liveness(&h1_ref)
            };
            let forward = liveness(&merges);
            let mut reversed = merges.clone();
            reversed.reverse();
            let mut rotated = merges.clone();
            if !rotated.is_empty() {
                let mid = rot % rotated.len();
                rotated.rotate_left(mid);
            }
            prop_assert_eq!(&forward, &liveness(&reversed));
            prop_assert_eq!(&forward, &liveness(&rotated));
            CaseResult::Pass
        },
    );
}

/// Allocation within one label is contiguous and append-only until a
/// region fills, and no two live objects ever overlap.
#[test]
fn allocations_never_overlap() {
    check(
        "allocations_never_overlap",
        &vec_of((range_u64(0..4), range_usize(1..128)), 1..64),
        &Config::with_cases(CASES),
        |allocs: Vec<(u64, usize)>| {
            let mut m = RegionManager::new(128, 32);
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for (label, words) in allocs {
                if let Ok(a) = m.alloc(Label::new(label), words) {
                    let s = a.raw();
                    let e = s + words as u64;
                    for &(os, oe) in &spans {
                        prop_assert!(e <= os || s >= oe, "objects overlap");
                    }
                    spans.push((s, e));
                }
            }
            CaseResult::Pass
        },
    );
}
