//! The composite H2 facade driven by the runtime's garbage collector.
//!
//! [`H2`] owns everything on the far side of the reference range check: the
//! backing word store for the second heap, the [`MmapSim`] cost model for
//! its file-backed mapping, the [`RegionManager`], the [`H2CardTable`], the
//! [`TransferPolicy`] and the [`Promoter`]. The runtime's collector calls
//! into it at the integration points §4 describes (barrier marking, minor-GC
//! card scans, the five extra marking-phase tasks, promotion during
//! compaction, region sweeping).

use crate::addr::{Addr, WORD_BYTES};
use crate::card::H2CardTable;
use crate::policy::{Label, TransferPolicy};
use crate::promo::Promoter;
use crate::region::{RegionError, RegionId, RegionManager};
use teraheap_storage::fault;
use teraheap_storage::obs::EventKind;
use teraheap_storage::{
    AttachError, Category, DeviceSpec, DurableStore, FaultPlan, FaultPlane, MmapSim, SharedDevice,
    SimClock, WriteBackOutcome,
};
use std::sync::Arc;

/// Configuration of the second heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct H2Config {
    /// Region size in words (paper sweeps 1–256 MB; Table 5).
    pub region_words: usize,
    /// Number of regions; capacity = `region_words * n_regions`.
    pub n_regions: usize,
    /// Card segment size in words (paper sweeps 512 B–16 KB; Figure 11a).
    pub card_seg_words: usize,
    /// Page-cache resident budget in bytes (the DR2 DRAM share).
    pub resident_budget_bytes: usize,
    /// Page size for the mapping (4096, or `2 << 20` for HugeMap).
    pub page_size: usize,
    /// Promotion buffer size in bytes (2 MB in the paper).
    pub promo_buffer_bytes: usize,
    /// Fault-injection plan. [`FaultPlan::none`] (the default) arms nothing
    /// and keeps the fault plane entirely out of the hot paths; the
    /// `TERAHEAP_FAULTS` environment variable overrides this field at
    /// [`H2::new`] time.
    pub faults: FaultPlan,
}

impl Default for H2Config {
    /// A laptop-scale default: 64 regions of 1 MB, 8 KB card segments,
    /// 16 MB resident budget, regular pages, 2 MB promotion buffers.
    fn default() -> Self {
        H2Config {
            region_words: (1 << 20) / WORD_BYTES,
            n_regions: 64,
            card_seg_words: (8 << 10) / WORD_BYTES,
            resident_budget_bytes: 16 << 20,
            page_size: 4096,
            promo_buffer_bytes: 2 << 20,
            faults: FaultPlan::none(),
        }
    }
}

impl H2Config {
    /// Total H2 capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.region_words * self.n_regions
    }

    /// Bytes of device space the H2 mapping needs — what a tenant's
    /// partition quota must cover ([`H2::attach`] validates this at attach
    /// time, not at first I/O).
    pub fn footprint_bytes(&self) -> usize {
        self.capacity_words() * WORD_BYTES
    }

    /// Starts a builder seeded with [`H2Config::default`].
    pub fn builder() -> H2ConfigBuilder {
        H2ConfigBuilder { config: H2Config::default() }
    }

    /// Checks the structural invariants the simulator relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`H2ConfigError`].
    pub fn validate(&self) -> Result<(), H2ConfigError> {
        if self.region_words == 0 {
            return Err(H2ConfigError::ZeroRegionSize);
        }
        if self.n_regions == 0 {
            return Err(H2ConfigError::ZeroRegionCount);
        }
        if self.card_seg_words == 0 || !self.region_words.is_multiple_of(self.card_seg_words) {
            return Err(H2ConfigError::CardSegment {
                card_seg_words: self.card_seg_words,
                region_words: self.region_words,
            });
        }
        if !self.page_size.is_power_of_two() {
            return Err(H2ConfigError::PageSize { page_size: self.page_size });
        }
        if self.promo_buffer_bytes == 0 {
            return Err(H2ConfigError::ZeroPromoBuffer);
        }
        Ok(())
    }
}

/// Builder for [`H2Config`]: the only supported construction path outside
/// this crate. `build` validates region sizing, card-segment divisibility
/// and page-size constraints up front, so a bad configuration is a typed
/// error instead of a panic (or silent nonsense) mid-run.
#[derive(Debug, Clone)]
pub struct H2ConfigBuilder {
    config: H2Config,
}

impl H2ConfigBuilder {
    /// Region size in words.
    pub fn region_words(mut self, words: usize) -> Self {
        self.config.region_words = words;
        self
    }

    /// Number of regions.
    pub fn n_regions(mut self, n: usize) -> Self {
        self.config.n_regions = n;
        self
    }

    /// Card segment size in words (must divide the region size).
    pub fn card_seg_words(mut self, words: usize) -> Self {
        self.config.card_seg_words = words;
        self
    }

    /// Page-cache resident budget in bytes (the DR2 DRAM share).
    pub fn resident_budget_bytes(mut self, bytes: usize) -> Self {
        self.config.resident_budget_bytes = bytes;
        self
    }

    /// Page size for the mapping (4096, or `2 << 20` for HugeMap).
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.config.page_size = bytes;
        self
    }

    /// Promotion buffer size in bytes.
    pub fn promo_buffer_bytes(mut self, bytes: usize) -> Self {
        self.config.promo_buffer_bytes = bytes;
        self
    }

    /// Fault-injection plan (overridden by `TERAHEAP_FAULTS` when set).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`H2Config::validate`].
    pub fn build(self) -> Result<H2Config, H2ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A structurally invalid [`H2Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum H2ConfigError {
    /// `region_words` was zero.
    ZeroRegionSize,
    /// `n_regions` was zero.
    ZeroRegionCount,
    /// The card segment size is zero or does not divide the region size.
    CardSegment { card_seg_words: usize, region_words: usize },
    /// The page size is not a power of two.
    PageSize { page_size: usize },
    /// The promotion buffer size was zero.
    ZeroPromoBuffer,
}

impl std::fmt::Display for H2ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H2ConfigError::ZeroRegionSize => write!(f, "H2 region size must be non-zero"),
            H2ConfigError::ZeroRegionCount => write!(f, "H2 must have at least one region"),
            H2ConfigError::CardSegment { card_seg_words, region_words } => write!(
                f,
                "card segment of {card_seg_words} words must be non-zero and divide \
                 the region size ({region_words} words)"
            ),
            H2ConfigError::PageSize { page_size } => {
                write!(f, "page size {page_size} is not a power of two")
            }
            H2ConfigError::ZeroPromoBuffer => {
                write!(f, "promotion buffer must be non-zero")
            }
        }
    }
}

impl std::error::Error for H2ConfigError {}

/// Errors surfaced by H2 operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum H2Error {
    /// H2 ran out of free regions.
    OutOfSpace,
    /// An object exceeds the region size (objects may not span regions).
    ObjectTooLarge {
        /// Requested object size.
        words: usize,
        /// Configured region size.
        region_words: usize,
    },
}

impl From<RegionError> for H2Error {
    fn from(e: RegionError) -> Self {
        match e {
            RegionError::OutOfRegions => H2Error::OutOfSpace,
            RegionError::ObjectTooLarge { words, region_words } => {
                H2Error::ObjectTooLarge { words, region_words }
            }
        }
    }
}

impl std::fmt::Display for H2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H2Error::OutOfSpace => write!(f, "H2 out of space"),
            H2Error::ObjectTooLarge { words, region_words } => write!(
                f,
                "object of {words} words exceeds H2 region size {region_words}"
            ),
        }
    }
}

impl std::error::Error for H2Error {}

/// What [`H2::recover`] rebuilt from the durable image after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Pages whose checksum failed (torn by the crash) — all were detected
    /// and zeroed, never silently trusted.
    pub torn_pages: u64,
    /// Regions whose journaled prefix survived intact.
    pub regions_recovered: u64,
    /// Journaled regions dropped because a torn page fell inside their
    /// durable prefix.
    pub regions_quarantined: u64,
}

/// The second heap: word store + region allocator + card table + policy +
/// promotion buffers + device cost model.
#[derive(Debug)]
pub struct H2 {
    config: H2Config,
    spec: DeviceSpec,
    clock: Arc<SimClock>,
    data: Vec<u64>,
    mmap: MmapSim,
    regions: RegionManager,
    cards: H2CardTable,
    policy: TransferPolicy,
    promoter: Promoter,
    objects_promoted: u64,
    words_promoted: u64,
    /// Armed fault plane; `None` on the fault-free fast path.
    plane: Option<Arc<FaultPlane>>,
    /// Durable device image, allocated only when a plane is armed.
    durable: Option<DurableStore>,
    /// Set when H2 gave up (retry-exhausted flush or injected ENOSPC): the
    /// collector stops promoting, matching the paper's no-H2 baseline.
    degraded: bool,
}

impl H2 {
    /// Creates a second heap over a device described by `spec`.
    ///
    /// When `TERAHEAP_FAULTS` is set (or `config.faults` is enabled), a
    /// fault plane and a durable device image are armed; otherwise every
    /// fault-path branch stays `None` and the heap behaves bit-identically
    /// to a build without the fault plane.
    pub fn new(config: H2Config, spec: DeviceSpec, clock: Arc<SimClock>) -> Self {
        let capacity_words = config.capacity_words();
        let mut mmap = MmapSim::new(
            spec,
            capacity_words * WORD_BYTES,
            config.resident_budget_bytes,
            config.page_size,
            clock.clone(),
        );
        let plan = FaultPlan::from_env().unwrap_or(config.faults);
        let (plane, durable) = if plan.enabled {
            let plane = FaultPlane::new(plan);
            mmap.set_fault_plane(plane.clone());
            let durable = DurableStore::new(capacity_words, config.page_size / WORD_BYTES);
            (Some(plane), Some(durable))
        } else {
            (None, None)
        };
        H2 {
            regions: RegionManager::new(config.region_words, config.n_regions),
            cards: H2CardTable::new(capacity_words, config.card_seg_words, config.region_words),
            policy: TransferPolicy::new(),
            promoter: Promoter::new(config.promo_buffer_bytes),
            data: vec![0; capacity_words],
            mmap,
            spec,
            clock,
            config,
            objects_promoted: 0,
            words_promoted: 0,
            plane,
            durable,
            degraded: false,
        }
    }

    /// Creates a second heap attached to a tenant partition of a
    /// [`SharedDevice`] — the server-plane constructor (DESIGN.md §13).
    ///
    /// The tenant is identified by `clock` (`Arc::ptr_eq` with the clock it
    /// registered with), the config's [`H2Config::footprint_bytes`] is
    /// validated against the tenant's quota here rather than at first I/O,
    /// and every device service of the mapping is routed through the
    /// device's bandwidth arbiter. With a sole tenant the arbiter never
    /// delays, so this is bit-identical to [`H2::new`] on a private device.
    ///
    /// # Errors
    ///
    /// See [`SharedDevice::attach`].
    pub fn attach(
        config: H2Config,
        device: &SharedDevice,
        clock: Arc<SimClock>,
    ) -> Result<Self, AttachError> {
        let lease = device.attach(&clock, config.footprint_bytes())?;
        let mut h2 = H2::new(config, device.spec(), clock);
        h2.mmap.set_lease(lease);
        Ok(h2)
    }

    /// The configuration this heap was built with.
    pub fn config(&self) -> &H2Config {
        &self.config
    }

    /// The device model backing the heap.
    pub fn device_spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.config.capacity_words()
    }

    /// The region manager (liveness, dependency lists, statistics).
    pub fn regions(&self) -> &RegionManager {
        &self.regions
    }

    /// Mutable access to the region manager (GC integration).
    pub fn regions_mut(&mut self) -> &mut RegionManager {
        &mut self.regions
    }

    /// The H2 card table.
    pub fn cards(&self) -> &H2CardTable {
        &self.cards
    }

    /// Mutable access to the card table (barriers and GC re-examination).
    pub fn cards_mut(&mut self) -> &mut H2CardTable {
        &mut self.cards
    }

    /// The transfer policy (hints and thresholds).
    pub fn policy(&self) -> &TransferPolicy {
        &self.policy
    }

    /// Mutable access to the transfer policy.
    pub fn policy_mut(&mut self) -> &mut TransferPolicy {
        &mut self.policy
    }

    /// The page-cache model of the H2 mapping.
    pub fn mmap(&self) -> &MmapSim {
        &self.mmap
    }

    /// The armed fault plane, if any.
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.plane.as_ref()
    }

    /// The durable device image, if a fault plane is armed.
    pub fn durable(&self) -> Option<&DurableStore> {
        self.durable.as_ref()
    }

    /// Whether H2 has degraded (retry-exhausted flush or injected ENOSPC).
    /// A degraded H2 accepts no more promotions: the runtime parks would-be
    /// promotees in the old generation, i.e. the paper's no-H2 baseline.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Whether the fault plane's crash point has fired (the simulated
    /// process is "dead"; only [`H2::recover`] makes progress again).
    pub fn is_crashed(&self) -> bool {
        self.plane.as_deref().is_some_and(|p| p.crashed())
    }

    /// Objects moved to H2 so far.
    pub fn objects_promoted(&self) -> u64 {
        self.objects_promoted
    }

    /// Words moved to H2 so far.
    pub fn words_promoted(&self) -> u64 {
        self.words_promoted
    }

    /// Registers an `h2_move(label)` hint.
    pub fn h2_move(&mut self, label: Label) {
        self.policy.request_move(label);
    }

    /// Allocates `words` in the region group for `label` without writing
    /// data (used by tests and by promotion).
    ///
    /// # Errors
    ///
    /// [`H2Error::OutOfSpace`] or [`H2Error::ObjectTooLarge`].
    pub fn alloc(&mut self, label: Label, words: usize) -> Result<Addr, H2Error> {
        if let Some(plane) = self.plane.as_deref() {
            if self.regions.would_open(label, words)
                && plane.deny_growth(self.regions.allocated_total())
            {
                // Injected ENOSPC: the backing file cannot grow. Degrade
                // instead of erroring every caller forever.
                if !self.degraded {
                    self.degraded = true;
                    self.clock.emit(EventKind::H2Degraded { enospc: true });
                }
                return Err(H2Error::OutOfSpace);
            }
        }
        Ok(self.regions.alloc(label, words)?)
    }

    /// Reads the word at `addr`, charging page-fault/DAX cost to `cat`.
    pub fn read_word(&mut self, addr: Addr, cat: Category) -> u64 {
        self.mmap.touch_read(addr.h2_byte_offset(), WORD_BYTES, cat);
        self.sync_durable();
        self.data[addr.h2_offset() as usize]
    }

    /// Writes the word at `addr`, charging cost to `cat`.
    ///
    /// Note: the caller (runtime post-write barrier) is responsible for
    /// marking the card dirty when the write stores a reference.
    pub fn write_word(&mut self, addr: Addr, value: u64, cat: Category) {
        self.mmap.touch_write(addr.h2_byte_offset(), WORD_BYTES, cat);
        self.data[addr.h2_offset() as usize] = value;
        self.mirror_dax(addr.h2_byte_offset(), WORD_BYTES);
        self.sync_durable();
    }

    /// Reads `out.len()` consecutive words starting at `addr` through the
    /// bulk access plane: one [`MmapSim::touch_run`] for the whole range
    /// (bit-identical cost to the per-word loop, per DESIGN.md §9) and one
    /// slice copy.
    ///
    /// [`MmapSim::touch_run`]: teraheap_storage::MmapSim::touch_run
    pub fn read_words(&mut self, addr: Addr, out: &mut [u64], cat: Category) {
        if out.is_empty() {
            return;
        }
        self.mmap
            .touch_run(addr.h2_byte_offset(), out.len() * WORD_BYTES, false, cat);
        self.sync_durable();
        let base = addr.h2_offset() as usize;
        out.copy_from_slice(&self.data[base..base + out.len()]);
    }

    /// Writes `vals` to consecutive words starting at `addr` through the
    /// bulk access plane (see [`H2::read_words`]). Card marking stays the
    /// caller's job, as for [`H2::write_word`].
    pub fn write_words(&mut self, addr: Addr, vals: &[u64], cat: Category) {
        if vals.is_empty() {
            return;
        }
        self.mmap
            .touch_run(addr.h2_byte_offset(), vals.len() * WORD_BYTES, true, cat);
        let base = addr.h2_offset() as usize;
        self.data[base..base + vals.len()].copy_from_slice(vals);
        self.mirror_dax(addr.h2_byte_offset(), vals.len() * WORD_BYTES);
        self.sync_durable();
    }

    /// Words per page of the backing mapping — the chunk size at which a
    /// bulk read over monotonically advancing addresses stays bit-identical
    /// to the per-word loop (DESIGN.md §9). Unbounded in DAX mode, where
    /// there are no pages.
    pub fn page_run_words(&self) -> usize {
        if self.mmap.is_dax() {
            usize::MAX
        } else {
            self.mmap.page_size() / WORD_BYTES
        }
    }

    /// Reads a word without charging any cost (GC internal bookkeeping that
    /// the phase-level cost model already accounts for).
    pub fn read_word_free(&self, addr: Addr) -> u64 {
        self.data[addr.h2_offset() as usize]
    }

    /// Writes a word without charging (pointer adjustment; the adjust phase
    /// charges per-reference CPU cost separately).
    pub fn write_word_free(&mut self, addr: Addr, value: u64) {
        self.data[addr.h2_offset() as usize] = value;
    }

    /// Moves one object's words into H2 under `label` during compaction,
    /// going through the promotion buffer. Returns the object's H2 address.
    ///
    /// Device write costs are charged to `cat` (normally
    /// [`Category::MajorGc`]) at each 2 MB batch flush.
    ///
    /// # Errors
    ///
    /// [`H2Error::OutOfSpace`] or [`H2Error::ObjectTooLarge`].
    pub fn promote(&mut self, label: Label, words: &[u64], cat: Category) -> Result<Addr, H2Error> {
        let addr = self.regions.alloc(label, words.len())?;
        self.write_promoted(addr, words, cat);
        Ok(addr)
    }

    /// Writes an already-reserved promoted object's words (two-phase form:
    /// the major GC's pre-compaction phase reserves addresses with
    /// [`H2::alloc`] and its compaction phase writes the data here).
    ///
    /// Device write costs go through the promotion buffer, charged to `cat`.
    pub fn write_promoted(&mut self, addr: Addr, words: &[u64], cat: Category) {
        let base = addr.h2_offset() as usize;
        self.data[base..base + words.len()].copy_from_slice(words);
        let region = self.regions.region_of(addr);
        let flushed = self.promoter.stage(region, words.len() * WORD_BYTES);
        self.charge_flush(flushed, cat);
        self.objects_promoted += 1;
        self.words_promoted += words.len() as u64;
        if flushed > 0 && self.plane.is_some() {
            self.faulty_flush(region, flushed, cat);
        }
    }

    /// Flushes all partially-filled promotion buffers (end of compaction).
    pub fn finish_promotion(&mut self, cat: Category) {
        let snapshot = if self.plane.is_some() {
            self.promoter.pending_regions()
        } else {
            Vec::new()
        };
        let flushed = self.promoter.flush_all();
        self.charge_flush(flushed, cat);
        if flushed > 0 && self.plane.is_some() {
            // One fault roll for the combined flush (it is one batched I/O
            // submission), then one durable write-back boundary per region.
            let plane = self.plane.clone().expect("checked above");
            let out = fault::inject(&plane, &self.clock, cat, true);
            if !out.ok {
                for &(region, bytes) in &snapshot {
                    self.promoter.unstage(region, bytes);
                }
                self.degrade();
                return;
            }
            for &(region, bytes) in &snapshot {
                if self.apply_durable_flush(region, bytes) == WriteBackOutcome::Crashed {
                    break;
                }
            }
        }
    }

    /// A promotion batch flushed: roll the injected write fault and, if the
    /// device accepted it, write the batch to the durable image (one
    /// write-back boundary). On retry exhaustion the batch is un-staged —
    /// its bytes are only in DRAM — and H2 degrades.
    fn faulty_flush(&mut self, region: RegionId, flushed: usize, cat: Category) {
        let plane = self.plane.clone().expect("caller checked the plane");
        let out = fault::inject(&plane, &self.clock, cat, true);
        if !out.ok {
            self.promoter.unstage(region, flushed);
            self.degrade();
            return;
        }
        self.apply_durable_flush(region, flushed);
    }

    /// Durably writes `region`'s most recent `bytes` flushed bytes and, on
    /// success, advances the region's watermark record in the metadata
    /// journal (WAL order: data pages first, then the watermark, so a crash
    /// in between leaves the old watermark and the batch is dropped at
    /// recovery rather than half-trusted).
    fn apply_durable_flush(&mut self, region: RegionId, bytes: usize) -> WriteBackOutcome {
        let plane = self.plane.clone().expect("caller checked the plane");
        let durable = self.durable.as_mut().expect("plane implies durable store");
        let rid = region.0 as usize;
        let (_, old_wm) = durable.meta(rid);
        let new_wm = old_wm + bytes as u64;
        let label_bits = self.regions.label_of(region).map_or(0, |l| l.id() + 1);
        let base_byte = rid as u64 * (self.regions.region_words() * WORD_BYTES) as u64;
        let page_bytes = (durable.page_words() * WORD_BYTES) as u64;
        let lo = (base_byte + old_wm) / page_bytes;
        let hi = (base_byte + new_wm - 1) / page_bytes;
        let pages: Vec<u64> = (lo..=hi).collect();
        let out = durable.write_back(&pages, &self.data, Some(&plane));
        match out {
            WriteBackOutcome::Applied => durable.set_meta(rid, label_bits, new_wm),
            WriteBackOutcome::Crashed => self.clock.emit(EventKind::CrashPoint),
            WriteBackOutcome::Ignored => {}
        }
        out
    }

    /// Flips to degraded mode once, with its Tracer event.
    fn degrade(&mut self) {
        if !self.degraded {
            self.degraded = true;
            self.clock.emit(EventKind::H2Degraded { enospc: false });
        }
    }

    /// Applies pages the page cache wrote back (evictions of dirty pages,
    /// explicit flushes) to the durable image. Fault-free runs have no
    /// write-back log and return immediately.
    fn sync_durable(&mut self) {
        if self.plane.is_none() {
            return;
        }
        let pages = self.mmap.take_writeback_pages();
        if pages.is_empty() {
            return;
        }
        let plane = self.plane.clone().expect("checked above");
        let durable = self.durable.as_mut().expect("plane implies durable store");
        if durable.write_back(&pages, &self.data, Some(&plane)) == WriteBackOutcome::Crashed {
            self.clock.emit(EventKind::CrashPoint);
        }
    }

    /// DAX (byte-addressable) devices persist stores directly: mirror the
    /// written byte range into the durable image immediately, as one
    /// write-back boundary. No-op for page-cached devices or without a
    /// plane.
    fn mirror_dax(&mut self, byte_off: usize, len: usize) {
        if self.plane.is_none() || !self.mmap.is_dax() || len == 0 {
            return;
        }
        let plane = self.plane.clone().expect("checked above");
        let durable = self.durable.as_mut().expect("plane implies durable store");
        let page_bytes = durable.page_words() * WORD_BYTES;
        let lo = byte_off / page_bytes;
        let hi = (byte_off + len - 1) / page_bytes;
        let pages: Vec<u64> = (lo..=hi).map(|p| p as u64).collect();
        if durable.write_back(&pages, &self.data, Some(&plane)) == WriteBackOutcome::Crashed {
            self.clock.emit(EventKind::CrashPoint);
        }
    }

    /// Writes every dirty page of the mapping back (the `msync(2)`
    /// analogue), charging `cat`, and applies the write-back to the durable
    /// image when a plane is armed.
    pub fn msync(&mut self, cat: Category) {
        self.mmap.flush(cat);
        self.sync_durable();
    }

    fn charge_flush(&self, flushed_bytes: usize, cat: Category) {
        if flushed_bytes > 0 {
            // The promotion buffer writes straight to the device file, so
            // the flush is one arbitrated device command (a no-op routing
            // for a private device or a sole tenant).
            self.mmap
                .charge_device(cat, self.spec.write_cost_ns(flushed_bytes));
            self.clock
                .emit(EventKind::H2PromoFlush { bytes: flushed_bytes as u64 });
        }
    }

    /// Marking-phase task 1 (§4): reset all region live bits and statistics.
    pub fn begin_major_marking(&mut self) {
        self.regions.clear_live_bits();
    }

    /// Marking-phase fence: an H1→H2 reference was found; set the region's
    /// live bit (the collector does *not* follow the reference).
    pub fn note_forward_ref(&mut self, target: Addr) {
        self.regions.mark_live(target);
    }

    /// Marking-phase task 5 precursor + sweep: propagate liveness through
    /// dependency lists and free every dead region, discarding its resident
    /// pages without write-back. Returns the freed regions.
    pub fn propagate_and_sweep(&mut self) -> Vec<RegionId> {
        self.regions.propagate_liveness();
        let freed = self.regions.sweep_dead();
        for &rid in &freed {
            let base = self.regions.region_base(rid).h2_byte_offset();
            let bytes = self.regions.region_words() * WORD_BYTES;
            self.mmap.discard(base, bytes);
            // Zero the store so stale data can never be misread as objects.
            let base_w = self.regions.region_base(rid).h2_offset() as usize;
            self.data[base_w..base_w + self.regions.region_words()].fill(0);
            // Retire the region's durable state too (the free is journaled:
            // watermark 0, no label), so a crash after the sweep can never
            // resurrect the dead region at recovery.
            if let Some(durable) = self.durable.as_mut() {
                if !durable.crashed() {
                    durable.set_meta(rid.0 as usize, 0, 0);
                    let pw = durable.page_words();
                    let zeros = vec![0u64; pw];
                    let lo = base / (pw * WORD_BYTES);
                    let hi = (base + bytes - 1) / (pw * WORD_BYTES);
                    for page in lo..=hi {
                        durable.rewrite_page(page, &zeros);
                    }
                }
            }
        }
        freed
    }

    /// Rebuilds H2 from the durable image after a simulated crash.
    ///
    /// Recovery trusts only what survived on the device: checksummed data
    /// pages and the atomic per-region metadata journal. For each journaled
    /// region the watermark names the durably-written prefix; a torn page
    /// inside that prefix quarantines the whole region (its group is
    /// incomplete — the safe interpretation, since objects from one group
    /// reference each other). All volatile state — cards, promotion
    /// buffers, the page cache, open-region map — restarts cold. The
    /// runtime layer then rebuilds object maps and reference invariants on
    /// top (see the runtime crate's `Heap::recover_from_crash`).
    ///
    /// Returns what was recovered. No-op (zero report) without a plane.
    pub fn recover(&mut self) -> RecoveryReport {
        let Some(plane) = self.plane.clone() else {
            return RecoveryReport::default();
        };
        let Some(durable) = self.durable.as_mut() else {
            return RecoveryReport::default();
        };
        let torn = durable.verify();
        // The volatile image died with the process: reload it from the
        // device, with torn pages read as zero (their checksum failed).
        let pw = durable.page_words();
        let data_len = self.data.len();
        self.data.copy_from_slice(&durable.words()[..data_len]);
        for &p in &torn {
            let lo = p as usize * pw;
            let hi = (lo + pw).min(self.data.len());
            self.data[lo..hi].fill(0);
        }
        // Rebuild region state from the metadata journal, quarantining any
        // region whose durable prefix contains a torn page.
        let region_bytes = self.regions.region_words() * WORD_BYTES;
        let mut entries: Vec<(Option<Label>, usize)> = Vec::with_capacity(self.config.n_regions);
        let mut quarantined = 0u64;
        let mut recovered = 0u64;
        for rid in 0..self.config.n_regions {
            let (label_bits, wm) = durable.meta(rid);
            if label_bits == 0 || wm == 0 {
                entries.push((None, 0));
                continue;
            }
            let base_byte = rid * region_bytes;
            let lo_page = (base_byte / (pw * WORD_BYTES)) as u64;
            let hi_page = ((base_byte + wm as usize - 1) / (pw * WORD_BYTES)) as u64;
            let is_torn = torn.iter().any(|&p| p >= lo_page && p <= hi_page);
            if is_torn {
                quarantined += 1;
                entries.push((None, 0));
                let base_w = rid * self.regions.region_words();
                self.data[base_w..base_w + self.regions.region_words()].fill(0);
            } else {
                recovered += 1;
                entries.push((Some(Label::new(label_bits - 1)), wm as usize / WORD_BYTES));
            }
        }
        self.regions.restore_from(&entries);
        // Repair the device image (zero quarantined/torn pages, fix their
        // checksums, retire quarantined journal records) and unfreeze.
        durable.clear_crash();
        let zeros = vec![0u64; pw];
        for &p in &torn {
            durable.rewrite_page(p as usize, &zeros);
        }
        for (rid, entry) in entries.iter().enumerate() {
            if entry.0.is_none() {
                durable.set_meta(rid, 0, 0);
                let lo = rid * region_bytes / (pw * WORD_BYTES);
                let hi = (rid * region_bytes + region_bytes - 1) / (pw * WORD_BYTES);
                for page in lo..=hi {
                    if !durable.page_ok(page) {
                        durable.rewrite_page(page, &zeros);
                    }
                }
            }
        }
        // Volatile state restarts cold.
        self.cards = H2CardTable::new(
            self.config.capacity_words(),
            self.config.card_seg_words,
            self.config.region_words,
        );
        self.promoter.reset_pending();
        self.mmap.discard(0, self.config.capacity_words() * WORD_BYTES);
        let _ = self.mmap.take_writeback_pages();
        plane.clear_crash();
        self.degraded = false;
        let report = RecoveryReport {
            torn_pages: torn.len() as u64,
            regions_recovered: recovered,
            regions_quarantined: quarantined,
        };
        self.clock.emit(EventKind::Recovered {
            torn_pages: report.torn_pages,
            regions: report.regions_recovered,
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h2() -> (H2, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        let config = H2Config::builder()
            .region_words(1024)
            .n_regions(8)
            .card_seg_words(128)
            .resident_budget_bytes(64 << 10)
            .page_size(4096)
            .promo_buffer_bytes(4096)
            .build()
            .unwrap();
        (H2::new(config, DeviceSpec::nvme_ssd(), clock.clone()), clock)
    }

    #[test]
    fn default_config_is_consistent() {
        let c = H2Config::default();
        assert_eq!(c.capacity_words(), c.region_words * c.n_regions);
    }

    #[test]
    fn words_round_trip_through_store() {
        let (mut h2, _clock) = h2();
        let a = h2.alloc(Label::new(1), 4).unwrap();
        h2.write_word(a, 0xdead, Category::Mutator);
        assert_eq!(h2.read_word(a, Category::Mutator), 0xdead);
        assert_eq!(h2.read_word_free(a), 0xdead);
    }

    #[test]
    fn reads_charge_page_faults() {
        let (mut h2, clock) = h2();
        let a = h2.alloc(Label::new(1), 4).unwrap();
        h2.read_word(a, Category::Mutator);
        assert!(clock.category_ns(Category::Mutator) > 0, "first touch faults");
        assert_eq!(h2.mmap().stats().page_faults(), 1);
    }

    #[test]
    fn promote_batches_device_writes() {
        let (mut h2, clock) = h2();
        let label = Label::new(1);
        let obj = vec![7u64; 64]; // 512 bytes; buffer is 4096
        for _ in 0..7 {
            h2.promote(label, &obj, Category::MajorGc).unwrap();
        }
        assert_eq!(clock.category_ns(Category::MajorGc), 0, "buffer not yet full");
        h2.promote(label, &obj, Category::MajorGc).unwrap();
        assert!(clock.category_ns(Category::MajorGc) > 0, "8th object flushes 4 KB");
        assert_eq!(h2.objects_promoted(), 8);
        assert_eq!(h2.words_promoted(), 8 * 64);
    }

    #[test]
    fn finish_promotion_flushes_remainder() {
        let (mut h2, clock) = h2();
        h2.promote(Label::new(1), &[1, 2, 3], Category::MajorGc).unwrap();
        assert_eq!(clock.category_ns(Category::MajorGc), 0);
        h2.finish_promotion(Category::MajorGc);
        assert!(clock.category_ns(Category::MajorGc) > 0);
    }

    #[test]
    fn promoted_data_is_readable() {
        let (mut h2, _clock) = h2();
        let a = h2.promote(Label::new(1), &[10, 20, 30], Category::MajorGc).unwrap();
        assert_eq!(h2.read_word_free(a), 10);
        assert_eq!(h2.read_word_free(a.add(2)), 30);
    }

    #[test]
    fn full_gc_cycle_reclaims_dead_region() {
        let (mut h2, _clock) = h2();
        let a = h2.promote(Label::new(1), &[1; 16], Category::MajorGc).unwrap();
        let b = h2.promote(Label::new(2), &[2; 16], Category::MajorGc).unwrap();
        h2.begin_major_marking();
        h2.note_forward_ref(a); // only label-1's region is referenced from H1
        let freed = h2.propagate_and_sweep();
        assert_eq!(freed.len(), 1);
        assert_eq!(freed[0], h2.regions().region_of(b));
        // The freed region's store is zeroed.
        assert_eq!(h2.read_word_free(b), 0);
    }

    #[test]
    fn dependency_keeps_region_alive_across_sweep() {
        let (mut h2, _clock) = h2();
        let a = h2.promote(Label::new(1), &[1; 8], Category::MajorGc).unwrap();
        let b = h2.promote(Label::new(2), &[2; 8], Category::MajorGc).unwrap();
        let (ra, rb) = (h2.regions().region_of(a), h2.regions().region_of(b));
        h2.regions_mut().add_dependency(ra, rb);
        h2.begin_major_marking();
        h2.note_forward_ref(a);
        assert!(h2.propagate_and_sweep().is_empty(), "b is kept via a's dep list");
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert_eq!(
            H2Config::builder().region_words(0).build(),
            Err(H2ConfigError::ZeroRegionSize)
        );
        assert_eq!(
            H2Config::builder().n_regions(0).build(),
            Err(H2ConfigError::ZeroRegionCount)
        );
        // 100 does not divide the default 1 MB region.
        let err = H2Config::builder().card_seg_words(100).build().unwrap_err();
        assert!(matches!(err, H2ConfigError::CardSegment { card_seg_words: 100, .. }));
        assert_eq!(
            H2Config::builder().page_size(1000).build(),
            Err(H2ConfigError::PageSize { page_size: 1000 })
        );
        assert_eq!(
            H2Config::builder().promo_buffer_bytes(0).build(),
            Err(H2ConfigError::ZeroPromoBuffer)
        );
        assert!(H2Config::builder().build().is_ok(), "default config is valid");
    }

    #[test]
    fn out_of_space_is_reported() {
        let clock = Arc::new(SimClock::new());
        let config = H2Config::builder()
            .region_words(16)
            .n_regions(1)
            .card_seg_words(16)
            .resident_budget_bytes(4096)
            .page_size(4096)
            .promo_buffer_bytes(4096)
            .build()
            .unwrap();
        let mut h2 = H2::new(config, DeviceSpec::nvme_ssd(), clock);
        h2.alloc(Label::new(1), 16).unwrap();
        assert_eq!(h2.alloc(Label::new(2), 1), Err(H2Error::OutOfSpace));
        assert_eq!(
            h2.alloc(Label::new(2), 17),
            Err(H2Error::ObjectTooLarge { words: 17, region_words: 16 })
        );
    }
}
