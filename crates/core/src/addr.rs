//! Word-granularity heap addresses spanning both heaps.
//!
//! TeraHeap presents the abstraction of a single managed heap (§3.1): the
//! mutator and collector see one address space and a reference range check
//! (a single compare against [`H2_BASE_WORDS`]) tells them which heap an
//! object lives in. That check is precisely what the paper adds to the
//! post-write barriers and GC scan loops (§4).
//!
//! Addresses are *word*-indexed (one word = 8 bytes), matching the
//! word-oriented object model of the runtime.

/// Bytes per heap word.
pub const WORD_BYTES: usize = 8;

/// First word address belonging to H2. Everything below is H1 (or null).
pub const H2_BASE_WORDS: u64 = 1 << 40;

/// The null reference.
pub const NULL: Addr = Addr(0);

/// A word-granularity address into the unified H1 + H2 address space.
///
/// `Addr(0)` is the null reference; H1 spaces are allocated in
/// `[1, H2_BASE_WORDS)` and H2 occupies `[H2_BASE_WORDS, ...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw word index.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Creates an H2 address from a word offset within H2.
    pub const fn h2_at(offset_words: u64) -> Self {
        Addr(H2_BASE_WORDS + offset_words)
    }

    /// The raw word index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the null reference.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The reference range check: whether the address is in H2.
    ///
    /// This is the single-compare fence the paper adds to barriers and GC.
    pub const fn is_h2(self) -> bool {
        self.0 >= H2_BASE_WORDS
    }

    /// Whether the address is a (non-null) H1 address.
    pub const fn is_h1(self) -> bool {
        self.0 != 0 && self.0 < H2_BASE_WORDS
    }

    /// Word offset within H2.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the address is not in H2.
    pub fn h2_offset(self) -> u64 {
        debug_assert!(self.is_h2(), "h2_offset on non-H2 address {self:?}");
        self.0 - H2_BASE_WORDS
    }

    /// Byte offset within H2 (for device/page-cache accounting).
    pub fn h2_byte_offset(self) -> usize {
        (self.h2_offset() as usize) * WORD_BYTES
    }

    /// The address `words` words past this one.
    #[allow(clippy::should_implement_trait)] // word-offset arithmetic, not `ops::Add`
    pub fn add(self, words: u64) -> Addr {
        Addr(self.0 + words)
    }

    /// The distance in words from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn words_since(self, earlier: Addr) -> u64 {
        debug_assert!(earlier.0 <= self.0);
        self.0 - earlier.0
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else if self.is_h2() {
            write!(f, "H2+{:#x}", self.h2_offset())
        } else {
            write!(f, "H1@{:#x}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_neither_heap() {
        assert!(NULL.is_null());
        assert!(!NULL.is_h1());
        assert!(!NULL.is_h2());
    }

    #[test]
    fn range_check_partitions_space() {
        let h1 = Addr::new(0x1000);
        assert!(h1.is_h1() && !h1.is_h2());
        let h2 = Addr::h2_at(0);
        assert!(h2.is_h2() && !h2.is_h1());
        assert_eq!(h2.raw(), H2_BASE_WORDS);
    }

    #[test]
    fn h2_offsets_round_trip() {
        let a = Addr::h2_at(12345);
        assert_eq!(a.h2_offset(), 12345);
        assert_eq!(a.h2_byte_offset(), 12345 * WORD_BYTES);
    }

    #[test]
    fn arithmetic() {
        let a = Addr::new(100);
        let b = a.add(28);
        assert_eq!(b.raw(), 128);
        assert_eq!(b.words_since(a), 28);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{NULL}"), "null");
        assert_eq!(format!("{}", Addr::new(16)), "H1@0x10");
        assert_eq!(format!("{}", Addr::h2_at(16)), "H2+0x10");
    }
}
