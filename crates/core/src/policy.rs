//! The hint-based interface state and transfer thresholds (§3.2).
//!
//! Frameworks drive TeraHeap with two hints: `h2_tag_root(obj, label)` tags
//! a root key-object (the label is stored in the object header by the
//! runtime), and `h2_move(label)` advises TeraHeap to move all objects with
//! that label during the next major GC. Decoupling tagging from transfer
//! lets frameworks delay movement until object groups become immutable,
//! avoiding expensive read-modify-writes on the device.
//!
//! Two thresholds protect H1 from filling up while the framework delays
//! `h2_move`:
//!
//! * **high threshold** (default 85%): if live objects exceed this fraction
//!   of H1 after a major GC, the *next* major GC moves marked objects even
//!   without `h2_move`;
//! * **low threshold** (optional, default 50% when enabled): under pressure,
//!   only enough marked objects move to bring H1 occupancy down to the low
//!   threshold — oldest labels first — leaving recently-marked (likely
//!   still-mutable) objects in H1 (§7.2 shows this cuts device
//!   read-modify-writes by up to 95%).

use std::collections::HashSet;

/// A label identifying an object group destined for H2.
///
/// Spark uses the RDD/DataFrame id; Giraph uses the superstep id. Labels
/// issued later are assumed "younger" (numerically larger), which the low
/// threshold uses to move oldest groups first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u64);

impl Label {
    /// Creates a label from a framework-assigned id.
    pub const fn new(id: u64) -> Self {
        Label(id)
    }

    /// The raw id.
    pub const fn id(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "label#{}", self.0)
    }
}

/// Decides, per major GC, which tagged objects move to H2 and how many.
#[derive(Debug, Clone)]
pub struct TransferPolicy {
    high: f64,
    low: Option<f64>,
    hints_enabled: bool,
    requested: HashSet<Label>,
    pressure: bool,
    adaptive: bool,
    consecutive_pressure: u32,
    consecutive_calm: u32,
}

impl TransferPolicy {
    /// Default high threshold (85% of H1, as in the paper).
    pub const DEFAULT_HIGH: f64 = 0.85;

    /// Default low threshold when enabled (50%, as in §7.2).
    pub const DEFAULT_LOW: f64 = 0.50;

    /// Creates the default policy: hints enabled, high = 85%, no low
    /// threshold.
    pub fn new() -> Self {
        TransferPolicy {
            high: Self::DEFAULT_HIGH,
            low: None,
            hints_enabled: true,
            requested: HashSet::new(),
            pressure: false,
            adaptive: false,
            consecutive_pressure: 0,
            consecutive_calm: 0,
        }
    }

    /// Sets the high threshold (fraction of H1 capacity).
    pub fn with_high(mut self, high: f64) -> Self {
        assert!((0.0..=1.0).contains(&high));
        self.high = high;
        self
    }

    /// Enables the low-threshold mechanism.
    pub fn with_low(mut self, low: f64) -> Self {
        assert!((0.0..=1.0).contains(&low));
        self.low = Some(low);
        self
    }

    /// Enables dynamic threshold adaptation — the extension §7.2 leaves as
    /// future work ("there may be benefits in setting the low and high
    /// thresholds dynamically"). After every major GC the controller nudges
    /// the high threshold: two consecutive pressured GCs lower it by five
    /// points (start moving earlier, before the heap is critical); four
    /// consecutive calm GCs raise it back toward the configured default
    /// (keep data in DRAM while there is room). The threshold stays within
    /// [0.55, DEFAULT_HIGH].
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Whether dynamic threshold adaptation is enabled.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Turns dynamic threshold adaptation on or off at run time (the
    /// adaptive-placement plane flips this together with the lifetime
    /// profiler; see `Heap::set_adaptive_placement`).
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
        if !on {
            self.consecutive_pressure = 0;
            self.consecutive_calm = 0;
        }
    }

    /// Disables the `h2_move` hint (the "NH" configuration of Figure 9a):
    /// objects move only via the high-threshold pressure mechanism.
    pub fn without_hints(mut self) -> Self {
        self.hints_enabled = false;
        self
    }

    /// Whether `h2_move` hints are honoured.
    pub fn hints_enabled(&self) -> bool {
        self.hints_enabled
    }

    /// Registers an `h2_move(label)` hint: the next major GC moves the
    /// label's marked objects. Ignored when hints are disabled.
    pub fn request_move(&mut self, label: Label) {
        if self.hints_enabled {
            self.requested.insert(label);
        }
    }

    /// Whether `label` was requested for transfer by `h2_move`.
    pub fn is_requested(&self, label: Label) -> bool {
        self.requested.contains(&label)
    }

    /// Whether the high-threshold pressure path is active for this GC.
    pub fn under_pressure(&self) -> bool {
        self.pressure
    }

    /// The high threshold (fraction of H1 capacity).
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Whether the upcoming major GC should move objects tagged `label`:
    /// either the framework requested it or H1 is under pressure.
    pub fn should_move(&self, label: Label) -> bool {
        self.pressure || self.requested.contains(&label)
    }

    /// Word budget for *pressure-driven* movement this major GC.
    ///
    /// Returns `None` for "unlimited" (move everything marked): that is the
    /// behaviour without a low threshold. With a low threshold, returns the
    /// number of words needed to bring occupancy down to it.
    ///
    /// Hint-requested labels are never budget-limited.
    pub fn pressure_budget_words(&self, live_words: u64, capacity_words: u64) -> Option<u64> {
        let low = self.low?;
        let target = (low * capacity_words as f64) as u64;
        Some(live_words.saturating_sub(target))
    }

    /// The labels currently requested by `h2_move`, for callers that decide
    /// candidate selection at a different time than they retire the GC (the
    /// incremental collector snapshots these at selection and passes them
    /// back through [`TransferPolicy::note_major_gc_end_satisfying`]).
    ///
    /// Returned as an iterator — the caller chooses whether to collect into
    /// its own (reusable) storage, so this GC-path accessor allocates
    /// nothing itself (PR 2 zero-allocation convention). Order is
    /// unspecified; callers must be order-insensitive.
    pub fn requested_labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.requested.iter().copied()
    }

    /// Updates the pressure flag from end-of-major-GC occupancy and clears
    /// satisfied `h2_move` requests (they applied to the GC that just ran).
    pub fn note_major_gc_end(&mut self, live_words: u64, capacity_words: u64) {
        self.requested.clear();
        self.note_major_gc_end_satisfying(live_words, capacity_words, &[]);
    }

    /// Like [`TransferPolicy::note_major_gc_end`], but clears only the
    /// `satisfied` requests — the ones the finishing collection actually
    /// considered. An incremental cycle snapshots its requests when candidate
    /// selection begins; a hint arriving after that point applied to a
    /// *later* GC and must survive the cycle's retirement.
    pub fn note_major_gc_end_satisfying(
        &mut self,
        live_words: u64,
        capacity_words: u64,
        satisfied: &[Label],
    ) {
        self.pressure = (live_words as f64) > self.high * capacity_words as f64;
        for label in satisfied {
            self.requested.remove(label);
        }
        if self.adaptive {
            if self.pressure {
                self.consecutive_pressure += 1;
                self.consecutive_calm = 0;
                if self.consecutive_pressure >= 2 {
                    self.high = (self.high - 0.05).max(0.55);
                    self.consecutive_pressure = 0;
                }
            } else {
                self.consecutive_calm += 1;
                self.consecutive_pressure = 0;
                if self.consecutive_calm >= 4 {
                    self.high = (self.high + 0.05).min(Self::DEFAULT_HIGH);
                    self.consecutive_calm = 0;
                }
            }
        }
    }
}

impl Default for TransferPolicy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_requests_move() {
        let mut p = TransferPolicy::new();
        let l = Label::new(3);
        assert!(!p.should_move(l));
        p.request_move(l);
        assert!(p.should_move(l));
        assert!(!p.should_move(Label::new(4)));
    }

    #[test]
    fn requests_clear_after_major_gc() {
        let mut p = TransferPolicy::new();
        p.request_move(Label::new(1));
        p.note_major_gc_end(0, 100);
        assert!(!p.should_move(Label::new(1)));
    }

    #[test]
    fn pressure_triggers_at_high_threshold() {
        let mut p = TransferPolicy::new();
        p.note_major_gc_end(84, 100);
        assert!(!p.under_pressure());
        p.note_major_gc_end(86, 100);
        assert!(p.under_pressure());
        // Under pressure, every label moves even without a hint.
        assert!(p.should_move(Label::new(42)));
    }

    #[test]
    fn no_low_threshold_means_unlimited_budget() {
        let p = TransferPolicy::new();
        assert_eq!(p.pressure_budget_words(90, 100), None);
    }

    #[test]
    fn low_threshold_limits_budget() {
        let p = TransferPolicy::new().with_low(0.5);
        assert_eq!(p.pressure_budget_words(90, 100), Some(40));
        assert_eq!(p.pressure_budget_words(40, 100), Some(0));
    }

    #[test]
    fn hints_can_be_disabled() {
        let mut p = TransferPolicy::new().without_hints();
        p.request_move(Label::new(1));
        assert!(!p.should_move(Label::new(1)), "NH config ignores h2_move");
        // The pressure mechanism still works.
        p.note_major_gc_end(90, 100);
        assert!(p.should_move(Label::new(1)));
    }

    #[test]
    #[should_panic(expected = "0.0..=1.0")]
    fn invalid_threshold_panics() {
        let _ = TransferPolicy::new().with_high(1.5);
    }

    #[test]
    fn adaptive_lowers_threshold_under_repeated_pressure() {
        let mut p = TransferPolicy::new().with_adaptive();
        assert!(p.is_adaptive());
        let h0 = p.high();
        p.note_major_gc_end(90, 100);
        p.note_major_gc_end(90, 100);
        assert!(p.high() < h0, "two pressured GCs lower the threshold");
    }

    #[test]
    fn adaptive_recovers_when_calm() {
        let mut p = TransferPolicy::new().with_adaptive();
        for _ in 0..4 {
            p.note_major_gc_end(95, 100);
        }
        let lowered = p.high();
        assert!(lowered < TransferPolicy::DEFAULT_HIGH);
        for _ in 0..16 {
            p.note_major_gc_end(10, 100);
        }
        assert!(p.high() > lowered, "calm GCs raise the threshold back");
        assert!(p.high() <= TransferPolicy::DEFAULT_HIGH);
    }

    #[test]
    fn adaptive_threshold_stays_bounded() {
        let mut p = TransferPolicy::new().with_adaptive();
        for _ in 0..100 {
            p.note_major_gc_end(99, 100);
        }
        assert!(p.high() >= 0.55, "floor holds: {}", p.high());
    }
}
