//! The extended H2 card table tracking backward (H2→H1) references (§3.4).
//!
//! Fencing GC scans out of H2 requires knowing which H1 objects are
//! referenced *from* H2 — the collector must neither reclaim nor fail to
//! relocate them. Scanning H2 itself would incur device I/O, so TeraHeap
//! keeps a DRAM card table with one byte per fixed-size H2 segment, with
//! four states instead of the vanilla two:
//!
//! * `Clean` — no backward references in the segment;
//! * `Dirty` — a mutator updated an object in the segment (post-write
//!   barrier) and it has not been re-examined;
//! * `YoungGen` — the segment's objects reference only young-generation H1
//!   objects;
//! * `OldGen` — the segment's objects reference only old-generation H1
//!   objects, which minor GC can skip entirely (old objects don't move in
//!   minor GC).
//!
//! Minor GC scans `Dirty` and `YoungGen` cards; major GC also scans
//! `OldGen`. Card segments are larger than H1's 512 B (the paper sweeps
//! 512 B–16 KB; larger segments shrink the table and the scan, at the cost
//! of more object scanning per dirty card — Figure 11a).
//!
//! For contention-free parallel scanning, H2 is divided into *slices* of
//! `n_threads` *stripes*; GC thread `t` processes stripe `t` of every slice
//! (Figure 3). TeraHeap sets the stripe size equal to the region size and
//! aligns objects to regions, so no two threads ever share a boundary card
//! (the vanilla JVM's forever-dirty boundary-card problem, which would be
//! disastrous with large device-backed segments).

use crate::addr::Addr;

/// State of one H2 card (one byte in the real implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CardState {
    /// No backward references in the segment.
    Clean = 0,
    /// Mutator updated the segment since the last examination.
    Dirty = 1,
    /// Segment references young-generation H1 objects (and possibly old).
    YoungGen = 2,
    /// Segment references only old-generation H1 objects.
    OldGen = 3,
}

/// The H2 card table: a DRAM byte array with one entry per H2 segment.
///
/// In addition to the byte array, the table maintains an incremental index
/// of cards that may be non-`Clean` (`noted` + a `listed` membership flag
/// per card): the write barrier and `set_state` append to it, and the GC
/// scan-list queries ([`H2CardTable::minor_scan_cards`],
/// [`H2CardTable::major_scan_cards`]) walk only the noted cards instead of
/// sweeping the whole table — the table is sized for all of H2 while the
/// working set of interesting cards is usually tiny.
///
/// Invariant: every non-`Clean` card is in `noted`. Cards that went back to
/// `Clean` stay listed until the next scan-list query reconciles the index
/// (lazy deletion). Scan order is ascending card index, identical to the
/// full sweep it replaces.
#[derive(Debug, Clone)]
pub struct H2CardTable {
    seg_words: usize,
    stripe_words: usize,
    cards: Vec<CardState>,
    noted: Vec<u32>,
    listed: Vec<bool>,
}

impl H2CardTable {
    /// Creates a card table covering `h2_words` words of H2 with
    /// `seg_words`-word card segments and `stripe_words`-word stripes
    /// (TeraHeap uses stripe size = region size).
    ///
    /// # Panics
    ///
    /// Panics if `seg_words` is zero or `stripe_words` is not a multiple of
    /// `seg_words` (a stripe boundary must also be a card boundary, which is
    /// what makes stripe-aligned scanning contention-free).
    pub fn new(h2_words: usize, seg_words: usize, stripe_words: usize) -> Self {
        assert!(seg_words > 0, "card segment size must be non-zero");
        assert!(
            stripe_words.is_multiple_of(seg_words),
            "stripe size must be a multiple of the card segment size"
        );
        let n = h2_words.div_ceil(seg_words);
        H2CardTable {
            seg_words,
            stripe_words,
            cards: vec![CardState::Clean; n],
            noted: Vec::new(),
            listed: vec![false; n],
        }
    }

    /// Adds card `idx` to the incremental non-`Clean` index.
    fn note(&mut self, idx: usize) {
        if !self.listed[idx] {
            self.listed[idx] = true;
            self.noted.push(idx as u32);
        }
    }

    /// Card segment size in words.
    pub fn seg_words(&self) -> usize {
        self.seg_words
    }

    /// Number of cards (the DRAM footprint in bytes).
    pub fn card_count(&self) -> usize {
        self.cards.len()
    }

    /// Index of the card covering `addr`.
    pub fn card_of(&self, addr: Addr) -> usize {
        (addr.h2_offset() as usize) / self.seg_words
    }

    /// First H2 address covered by card `idx`.
    pub fn card_base(&self, idx: usize) -> Addr {
        Addr::h2_at((idx * self.seg_words) as u64)
    }

    /// State of card `idx`.
    pub fn state(&self, idx: usize) -> CardState {
        self.cards[idx]
    }

    /// Sets card `idx` to `state` (GC re-examination outcome).
    pub fn set_state(&mut self, idx: usize, state: CardState) {
        self.cards[idx] = state;
        if state != CardState::Clean {
            self.note(idx);
        }
    }

    /// Post-write-barrier entry: marks the card covering `addr` dirty.
    pub fn mark_dirty(&mut self, addr: Addr) {
        let idx = self.card_of(addr);
        self.cards[idx] = CardState::Dirty;
        self.note(idx);
    }

    /// Cards that minor GC must scan: `Dirty` or `YoungGen`.
    pub fn minor_scan_cards(&mut self) -> Vec<usize> {
        self.collect(|s| matches!(s, CardState::Dirty | CardState::YoungGen))
    }

    /// Cards that major GC must scan: everything except `Clean`.
    pub fn major_scan_cards(&mut self) -> Vec<usize> {
        self.collect(|s| s != CardState::Clean)
    }

    /// Walks the noted-card index in ascending order, dropping entries that
    /// went back to `Clean` (lazy deletion) and returning those matching
    /// `pred` — same output as a full table sweep would produce.
    fn collect(&mut self, pred: impl Fn(CardState) -> bool) -> Vec<usize> {
        self.noted.sort_unstable();
        self.noted.dedup();
        let mut out = Vec::new();
        let cards = &self.cards;
        let listed = &mut self.listed;
        self.noted.retain(|&i| {
            let s = cards[i as usize];
            if s == CardState::Clean {
                listed[i as usize] = false;
                return false;
            }
            if pred(s) {
                out.push(i as usize);
            }
            true
        });
        out
    }

    /// The stripe containing card `idx`.
    pub fn stripe_of_card(&self, idx: usize) -> usize {
        (idx * self.seg_words) / self.stripe_words
    }

    /// The GC thread that owns card `idx` under the slice/stripe scheme:
    /// thread `t` processes stripe `t` of every slice.
    pub fn thread_of_card(&self, idx: usize, n_threads: usize) -> usize {
        self.stripe_of_card(idx) % n_threads.max(1)
    }

    /// Partitions `cards` across `n_threads` GC threads by stripe ownership
    /// and returns per-thread card counts — used to model the parallel scan
    /// cost as the maximum per-thread share.
    pub fn per_thread_load(&self, cards: &[usize], n_threads: usize) -> Vec<usize> {
        let n = n_threads.max(1);
        let mut load = vec![0usize; n];
        for &c in cards {
            load[self.thread_of_card(c, n)] += 1;
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> H2CardTable {
        // 64-word segments, 256-word stripes, 4096 words of H2.
        H2CardTable::new(4096, 64, 256)
    }

    #[test]
    fn card_count_covers_h2() {
        let t = table();
        assert_eq!(t.card_count(), 64);
    }

    #[test]
    fn card_of_and_base_are_inverse() {
        let t = table();
        let addr = Addr::h2_at(130);
        let c = t.card_of(addr);
        assert_eq!(c, 2);
        assert_eq!(t.card_base(c), Addr::h2_at(128));
    }

    #[test]
    fn barrier_marks_dirty() {
        let mut t = table();
        assert_eq!(t.state(5), CardState::Clean);
        t.mark_dirty(Addr::h2_at(5 * 64 + 3));
        assert_eq!(t.state(5), CardState::Dirty);
    }

    #[test]
    fn minor_scan_skips_oldgen_cards() {
        let mut t = table();
        t.set_state(1, CardState::Dirty);
        t.set_state(2, CardState::YoungGen);
        t.set_state(3, CardState::OldGen);
        assert_eq!(t.minor_scan_cards(), vec![1, 2]);
        assert_eq!(t.major_scan_cards(), vec![1, 2, 3]);
    }

    #[test]
    fn stripes_assign_threads_round_robin() {
        let t = table(); // stripe = 4 cards
        assert_eq!(t.stripe_of_card(0), 0);
        assert_eq!(t.stripe_of_card(3), 0);
        assert_eq!(t.stripe_of_card(4), 1);
        assert_eq!(t.thread_of_card(0, 2), 0);
        assert_eq!(t.thread_of_card(4, 2), 1);
        assert_eq!(t.thread_of_card(8, 2), 0); // next slice wraps
    }

    #[test]
    fn per_thread_load_partitions_all_cards() {
        let t = table();
        let cards: Vec<usize> = (0..64).collect();
        let load = t.per_thread_load(&cards, 4);
        assert_eq!(load.iter().sum::<usize>(), 64);
        // Uniform card distribution over stripes => balanced threads.
        assert!(load.iter().all(|&l| l == 16));
    }

    #[test]
    fn larger_segments_shrink_table() {
        let small = H2CardTable::new(1 << 20, 64, 1 << 15); // 512 B segments
        let large = H2CardTable::new(1 << 20, 2048, 1 << 15); // 16 KB segments
        assert_eq!(small.card_count() / large.card_count(), 32);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_stripe_panics() {
        let _ = H2CardTable::new(4096, 64, 100);
    }
}
