//! Region-based organization of H2 (§3.3, Figure 2).
//!
//! H2 is divided into fixed-size regions. Each region hosts an object group
//! with a similar lifetime — the transitive closure of root key-objects
//! tagged with the same label — so dead objects can be reclaimed *in bulk*
//! by freeing whole regions. Unlike DRAM region allocators (Broom, Yak),
//! TeraHeap never compacts H2: reclamation is lazy (reset the allocation
//! pointer, drop the dependency list) because compaction would generate
//! excessive read-modify-write I/O on the device.
//!
//! Per-region metadata lives in DRAM: `start`/`top` pointers, a `live` bit
//! set when marking finds an H1→H2 reference into the region, and a
//! *dependency list* of regions that this region's objects reference
//! (directional, so a region referenced only by dead regions can still be
//! reclaimed — the property the union-find alternative loses).

use crate::addr::Addr;
use crate::policy::Label;

/// Identifier of an H2 region (index into the region array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Per-region metadata (DRAM-resident, Figure 2).
#[derive(Debug, Clone)]
struct Region {
    /// Allocation offset within the region, in words (the `top` pointer).
    top: usize,
    /// Live bit: reachable from H1 this collection (directly or via deps).
    live: bool,
    /// Label of the object group placed here, if the region is in use.
    label: Option<Label>,
    /// Dependency list: regions referenced by objects in this region.
    deps: Vec<RegionId>,
    /// Objects allocated in this region (for Figure 10 statistics).
    total_objects: u64,
    /// Live objects observed during the last marking (Figure 10).
    live_objects: u64,
    /// Words occupied by live objects during the last marking (Figure 10).
    live_words: u64,
}

impl Region {
    fn empty() -> Self {
        Region {
            top: 0,
            live: false,
            label: None,
            deps: Vec::new(),
            total_objects: 0,
            live_objects: 0,
            live_words: 0,
        }
    }

    fn is_free(&self) -> bool {
        self.label.is_none() && self.top == 0
    }
}

/// Snapshot of one region's occupancy, used for Figure 10 and Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionStats {
    /// Region identifier.
    pub id: RegionId,
    /// Words allocated in the region.
    pub used_words: usize,
    /// Total objects ever allocated into the region (since last reclaim).
    pub total_objects: u64,
    /// Objects found live by the last marking.
    pub live_objects: u64,
    /// Words occupied by live objects at the last marking.
    pub live_words: u64,
    /// Current length of the dependency list.
    pub dep_count: usize,
}

impl RegionStats {
    /// Percentage of the region's objects that were live (0–100).
    pub fn live_object_pct(&self) -> f64 {
        if self.total_objects == 0 {
            0.0
        } else {
            100.0 * self.live_objects as f64 / self.total_objects as f64
        }
    }

    /// Percentage of the region's *space* occupied by live objects, relative
    /// to the full region size (0–100).
    pub fn live_space_pct(&self, region_words: usize) -> f64 {
        if region_words == 0 {
            0.0
        } else {
            100.0 * self.live_words as f64 / region_words as f64
        }
    }
}

/// Errors from region allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The requested object is larger than a whole region.
    ObjectTooLarge { words: usize, region_words: usize },
    /// No free region is available (H2 exhausted).
    OutOfRegions,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::ObjectTooLarge { words, region_words } => write!(
                f,
                "object of {words} words exceeds region size of {region_words} words"
            ),
            RegionError::OutOfRegions => write!(f, "no free H2 region available"),
        }
    }
}

impl std::error::Error for RegionError {}

/// Opaque copy of a [`RegionManager`]'s allocation state, captured by
/// [`RegionManager::snapshot`] and consumed by [`RegionManager::restore`].
#[derive(Debug, Clone)]
pub struct RegionSnapshot {
    regions: Vec<Region>,
    free: Vec<RegionId>,
    open: std::collections::HashMap<Label, RegionId>,
    allocated_total: u64,
}

/// The H2 region allocator and liveness tracker.
///
/// Objects with the same label are placed together (append-only) in the
/// label's current open region; a new region is opened when the current one
/// fills. Objects never span regions, which lets stripe-aligned card
/// scanning proceed without cross-thread card sharing (§3.4).
#[derive(Debug)]
pub struct RegionManager {
    region_words: usize,
    regions: Vec<Region>,
    /// Free-region stack.
    free: Vec<RegionId>,
    /// Current open region per label.
    open: std::collections::HashMap<Label, RegionId>,
    /// Cumulative count of regions reclaimed over the run.
    reclaimed_total: u64,
    /// Cumulative count of regions ever allocated (opened) over the run.
    allocated_total: u64,
    /// Stats snapshots of regions reclaimed during execution (Figure 10
    /// counts "allocated regions = reclaimed during execution + active at
    /// shutdown").
    reclaimed_stats: Vec<RegionStats>,
}

impl RegionManager {
    /// Creates a manager with `n_regions` regions of `region_words` words.
    pub fn new(region_words: usize, n_regions: usize) -> Self {
        let mut free: Vec<RegionId> = (0..n_regions as u32).map(RegionId).collect();
        free.reverse(); // pop from the low end first
        RegionManager {
            region_words,
            regions: vec![Region::empty(); n_regions],
            free,
            open: std::collections::HashMap::new(),
            reclaimed_total: 0,
            allocated_total: 0,
            reclaimed_stats: Vec::new(),
        }
    }

    /// Region size in words.
    pub fn region_words(&self) -> usize {
        self.region_words
    }

    /// Total number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of currently free regions.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Cumulative number of regions reclaimed.
    pub fn reclaimed_total(&self) -> u64 {
        self.reclaimed_total
    }

    /// Cumulative number of regions opened for allocation.
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    /// The region containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is not an H2 address within bounds.
    pub fn region_of(&self, addr: Addr) -> RegionId {
        let idx = (addr.h2_offset() as usize) / self.region_words;
        debug_assert!(idx < self.regions.len(), "H2 address out of range");
        RegionId(idx as u32)
    }

    /// Base address of region `rid`.
    pub fn region_base(&self, rid: RegionId) -> Addr {
        Addr::h2_at((rid.0 as usize * self.region_words) as u64)
    }

    /// Label of the group placed in `rid`, if any.
    pub fn label_of(&self, rid: RegionId) -> Option<Label> {
        self.regions[rid.0 as usize].label
    }

    /// Words currently allocated in `rid`.
    pub fn used_words(&self, rid: RegionId) -> usize {
        self.regions[rid.0 as usize].top
    }

    /// Allocates `words` for one object in the current region for `label`,
    /// opening a new region when needed. Returns the object address.
    ///
    /// # Errors
    ///
    /// [`RegionError::ObjectTooLarge`] if `words > region_words`;
    /// [`RegionError::OutOfRegions`] if H2 is exhausted.
    pub fn alloc(&mut self, label: Label, words: usize) -> Result<Addr, RegionError> {
        if words > self.region_words {
            return Err(RegionError::ObjectTooLarge {
                words,
                region_words: self.region_words,
            });
        }
        let rid = match self.open.get(&label) {
            Some(&rid) if self.regions[rid.0 as usize].top + words <= self.region_words => rid,
            _ => {
                let rid = self.free.pop().ok_or(RegionError::OutOfRegions)?;
                let r = &mut self.regions[rid.0 as usize];
                debug_assert!(r.is_free());
                r.label = Some(label);
                self.allocated_total += 1;
                self.open.insert(label, rid);
                rid
            }
        };
        let top = self.regions[rid.0 as usize].top;
        let addr = self.region_base(rid).add(top as u64);
        let r = &mut self.regions[rid.0 as usize];
        r.top += words;
        r.total_objects += 1;
        Ok(addr)
    }

    /// Whether allocating `words` under `label` would have to open a fresh
    /// region (no open region for the label, or not enough room left).
    /// Oversized objects report `true`; the subsequent [`RegionManager::alloc`]
    /// rejects them before touching the free list.
    pub fn would_open(&self, label: Label, words: usize) -> bool {
        match self.open.get(&label) {
            Some(&rid) => self.regions[rid.0 as usize].top + words > self.region_words,
            None => true,
        }
    }

    /// Clamps `rid`'s allocation pointer down to `new_top` words (crash
    /// recovery: a truncated object walk found the tail unparsable).
    pub fn truncate(&mut self, rid: RegionId, new_top: usize) {
        let r = &mut self.regions[rid.0 as usize];
        r.top = r.top.min(new_top);
    }

    /// Captures the complete allocation state (regions, free list, open map,
    /// cumulative open count) for the promotion transaction: the major GC
    /// snapshots before assigning H2 destinations and restores on a failed
    /// assignment, so a half-assigned promotion batch never leaks regions.
    pub fn snapshot(&self) -> RegionSnapshot {
        RegionSnapshot {
            regions: self.regions.clone(),
            free: self.free.clone(),
            open: self.open.clone(),
            allocated_total: self.allocated_total,
        }
    }

    /// Restores state captured by [`RegionManager::snapshot`].
    pub fn restore(&mut self, snap: RegionSnapshot) {
        self.regions = snap.regions;
        self.free = snap.free;
        self.open = snap.open;
        self.allocated_total = snap.allocated_total;
    }

    /// Rebuilds allocation state from recovered `(label, top_words)` entries,
    /// one per region (crash recovery from the durable metadata journal).
    /// Dependency lists and statistics restart empty — they are DRAM-only
    /// state the runtime re-derives — and the open map restarts empty, so
    /// the next allocation under any label opens a fresh region rather than
    /// appending to a region whose tail state is uncertain. The cumulative
    /// open count restarts at the number of in-use regions (history is lost
    /// with DRAM).
    ///
    /// # Panics
    ///
    /// Panics if `entries.len()` differs from the region count.
    pub fn restore_from(&mut self, entries: &[(Option<Label>, usize)]) {
        assert_eq!(entries.len(), self.regions.len(), "one entry per region");
        self.open.clear();
        self.free.clear();
        let mut in_use = 0u64;
        for (i, &(label, top)) in entries.iter().enumerate() {
            let r = &mut self.regions[i];
            *r = Region::empty();
            r.label = label;
            if label.is_some() {
                r.top = top.min(self.region_words);
                in_use += 1;
            }
        }
        for i in (0..self.regions.len()).rev() {
            if self.regions[i].is_free() {
                self.free.push(RegionId(i as u32));
            }
        }
        self.allocated_total = in_use;
    }

    /// Adds `to` to `from`'s dependency list if not already present.
    ///
    /// Called when an object moved into region `from` references an object
    /// in region `to` (§3.3: cross-region references are directional).
    pub fn add_dependency(&mut self, from: RegionId, to: RegionId) {
        if from == to {
            return;
        }
        let deps = &mut self.regions[from.0 as usize].deps;
        if !deps.contains(&to) {
            deps.push(to);
        }
    }

    /// Clears all live bits and per-region live statistics.
    ///
    /// Called at the beginning of the major-GC marking phase (§4).
    pub fn clear_live_bits(&mut self) {
        for r in &mut self.regions {
            r.live = false;
            r.live_objects = 0;
            r.live_words = 0;
        }
    }

    /// Marks the region containing `addr` live (an H1→H2 reference was seen).
    pub fn mark_live(&mut self, addr: Addr) {
        let rid = self.region_of(addr);
        self.regions[rid.0 as usize].live = true;
    }

    /// Records one live object of `words` words in `addr`'s region, for the
    /// Figure 10 statistics.
    pub fn record_live_object(&mut self, addr: Addr, words: usize) {
        let rid = self.region_of(addr);
        let r = &mut self.regions[rid.0 as usize];
        r.live_objects += 1;
        r.live_words += words as u64;
    }

    /// Whether `rid`'s live bit is set.
    pub fn is_live(&self, rid: RegionId) -> bool {
        self.regions[rid.0 as usize].live
    }

    /// Propagates liveness through dependency lists: every region reachable
    /// from a live region (following outgoing dependencies) becomes live.
    ///
    /// Returns the number of regions whose live bit was set by propagation.
    pub fn propagate_liveness(&mut self) -> usize {
        let mut stack: Vec<RegionId> = self
            .regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live)
            .map(|(i, _)| RegionId(i as u32))
            .collect();
        let mut newly = 0;
        while let Some(rid) = stack.pop() {
            let deps = self.regions[rid.0 as usize].deps.clone();
            for dep in deps {
                let r = &mut self.regions[dep.0 as usize];
                if !r.live {
                    r.live = true;
                    newly += 1;
                    stack.push(dep);
                }
            }
        }
        newly
    }

    /// Frees every in-use region whose live bit is clear: resets the
    /// allocation pointer and deletes the dependency list (§3.3, "Freeing
    /// dead regions"). Returns the freed region ids so the caller can
    /// discard their pages from the mapping.
    pub fn sweep_dead(&mut self) -> Vec<RegionId> {
        let mut freed = Vec::new();
        for i in 0..self.regions.len() {
            let rid = RegionId(i as u32);
            let r = &self.regions[i];
            if r.label.is_some() && !r.live {
                self.reclaimed_stats.push(self.stats_of(rid));
                let r = &mut self.regions[i];
                let label = r.label.take().expect("in-use region has a label");
                r.top = 0;
                r.deps.clear();
                r.total_objects = 0;
                r.live_objects = 0;
                r.live_words = 0;
                if self.open.get(&label) == Some(&rid) {
                    self.open.remove(&label);
                }
                self.free.push(rid);
                self.reclaimed_total += 1;
                freed.push(rid);
            }
        }
        freed
    }

    /// Occupancy snapshot of `rid`.
    pub fn stats_of(&self, rid: RegionId) -> RegionStats {
        let r = &self.regions[rid.0 as usize];
        RegionStats {
            id: rid,
            used_words: r.top,
            total_objects: r.total_objects,
            live_objects: r.live_objects,
            live_words: r.live_words,
            dep_count: r.deps.len(),
        }
    }

    /// Snapshots of all regions currently in use.
    pub fn active_stats(&self) -> Vec<RegionStats> {
        (0..self.regions.len() as u32)
            .map(RegionId)
            .filter(|&rid| self.regions[rid.0 as usize].label.is_some())
            .map(|rid| self.stats_of(rid))
            .collect()
    }

    /// Snapshots captured for regions at the moment they were reclaimed.
    pub fn reclaimed_stats(&self) -> &[RegionStats] {
        &self.reclaimed_stats
    }

    /// Average dependency-list length over in-use regions (§3.3 reports ~10).
    pub fn mean_dep_list_len(&self) -> f64 {
        let in_use: Vec<_> = self.regions.iter().filter(|r| r.label.is_some()).collect();
        if in_use.is_empty() {
            return 0.0;
        }
        in_use.iter().map(|r| r.deps.len()).sum::<usize>() as f64 / in_use.len() as f64
    }

    /// DRAM metadata footprint in bytes for the current region count —
    /// the quantity Table 5 reports per TB of H2.
    ///
    /// Counts the fixed per-region metadata (pointers, live bit, label,
    /// promotion-buffer bookkeeping) the way the paper sizes it; dependency
    /// lists are dynamic and excluded, as in Table 5.
    pub fn metadata_bytes(&self) -> usize {
        // start ptr + top ptr + live-head ptr + label + live bit/padding +
        // dependency-list head + promotion-buffer descriptor ≈ 7 words,
        // rounded like the paper's ~417 MB per TB at 1 MB regions
        // (417 MB / 1 Mi regions ≈ 417 B... the paper's figure also counts
        // the region array entry and buffer; we use its implied ~437 B/region
        // constant less the 2 MB buffer, i.e. ~0.4 KB per region).
        const PER_REGION_BYTES: usize = 437;
        self.regions.len() * PER_REGION_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> RegionManager {
        RegionManager::new(1024, 8)
    }

    #[test]
    fn alloc_is_append_only_within_label() {
        let mut m = mgr();
        let l = Label::new(7);
        let a = m.alloc(l, 10).unwrap();
        let b = m.alloc(l, 6).unwrap();
        assert_eq!(b.words_since(a), 10);
        assert_eq!(m.region_of(a), m.region_of(b));
        assert_eq!(m.used_words(m.region_of(a)), 16);
    }

    #[test]
    fn different_labels_get_different_regions() {
        let mut m = mgr();
        let a = m.alloc(Label::new(1), 8).unwrap();
        let b = m.alloc(Label::new(2), 8).unwrap();
        assert_ne!(m.region_of(a), m.region_of(b));
    }

    #[test]
    fn objects_never_span_regions() {
        let mut m = mgr();
        let l = Label::new(1);
        m.alloc(l, 1000).unwrap();
        // 100 words don't fit in the 24 remaining; a fresh region is opened.
        let b = m.alloc(l, 100).unwrap();
        assert_eq!(b.h2_offset() % 1024, 0, "new object starts at a region base");
        assert_eq!(m.allocated_total(), 2);
    }

    #[test]
    fn oversized_object_is_rejected() {
        let mut m = mgr();
        assert_eq!(
            m.alloc(Label::new(1), 1025),
            Err(RegionError::ObjectTooLarge { words: 1025, region_words: 1024 })
        );
    }

    #[test]
    fn exhaustion_errors() {
        let mut m = RegionManager::new(16, 2);
        m.alloc(Label::new(1), 16).unwrap();
        m.alloc(Label::new(2), 16).unwrap();
        assert_eq!(m.alloc(Label::new(3), 1), Err(RegionError::OutOfRegions));
    }

    #[test]
    fn dependency_lists_deduplicate() {
        let mut m = mgr();
        m.add_dependency(RegionId(0), RegionId(1));
        m.add_dependency(RegionId(0), RegionId(1));
        m.add_dependency(RegionId(0), RegionId(0)); // self-dep ignored
        assert_eq!(m.stats_of(RegionId(0)).dep_count, 1);
    }

    #[test]
    fn liveness_propagates_along_direction() {
        // X -> Y -> Z; only Z referenced from H1 => X and Y stay dead.
        let mut m = mgr();
        let x = m.alloc(Label::new(1), 4).unwrap();
        let y = m.alloc(Label::new(2), 4).unwrap();
        let z = m.alloc(Label::new(3), 4).unwrap();
        let (rx, ry, rz) = (m.region_of(x), m.region_of(y), m.region_of(z));
        m.add_dependency(rx, ry);
        m.add_dependency(ry, rz);
        m.clear_live_bits();
        m.mark_live(z);
        m.propagate_liveness();
        assert!(!m.is_live(rx));
        assert!(!m.is_live(ry));
        assert!(m.is_live(rz));
        let freed = m.sweep_dead();
        assert_eq!(freed, vec![rx, ry]);
        assert_eq!(m.reclaimed_total(), 2);
    }

    #[test]
    fn liveness_propagates_forward_from_live_region() {
        // X -> Y; X referenced from H1 => Y must be kept (X's objects point
        // into Y).
        let mut m = mgr();
        let x = m.alloc(Label::new(1), 4).unwrap();
        let y = m.alloc(Label::new(2), 4).unwrap();
        let (rx, ry) = (m.region_of(x), m.region_of(y));
        m.add_dependency(rx, ry);
        m.clear_live_bits();
        m.mark_live(x);
        assert_eq!(m.propagate_liveness(), 1);
        assert!(m.is_live(ry));
        assert!(m.sweep_dead().is_empty());
    }

    #[test]
    fn sweep_resets_region_for_reuse() {
        let mut m = RegionManager::new(16, 1);
        let l = Label::new(9);
        m.alloc(l, 16).unwrap();
        m.clear_live_bits();
        let freed = m.sweep_dead();
        assert_eq!(freed.len(), 1);
        // Region is reusable, under a different label too.
        let a = m.alloc(Label::new(10), 8).unwrap();
        assert_eq!(m.region_of(a), freed[0]);
    }

    #[test]
    fn reclaimed_stats_capture_occupancy() {
        let mut m = mgr();
        let l = Label::new(1);
        let a = m.alloc(l, 10).unwrap();
        m.alloc(l, 20).unwrap();
        m.clear_live_bits();
        m.record_live_object(a, 10);
        m.sweep_dead();
        let snap = &m.reclaimed_stats()[0];
        assert_eq!(snap.total_objects, 2);
        assert_eq!(snap.live_objects, 1);
        assert_eq!(snap.live_words, 10);
        assert!((snap.live_object_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn metadata_scales_with_region_count_like_table5() {
        // Table 5: per TB of H2, 1 MB regions -> 417 MB metadata;
        // 256 MB regions -> ~2 MB. Ratios must match region-count ratios.
        let tb: usize = 1 << 40;
        let m1 = RegionManager::new((1 << 20) / 8, tb / (1 << 20)).metadata_bytes();
        let m256 = RegionManager::new((256 << 20) / 8, tb / (256 << 20)).metadata_bytes();
        assert_eq!(m1 / m256, 256);
        let mb = m1 as f64 / (1 << 20) as f64;
        assert!((mb - 417.0).abs() < 25.0, "1 MB regions give ~417 MB/TB, got {mb}");
    }

    #[test]
    fn mean_dep_list_len_counts_in_use_only() {
        let mut m = mgr();
        let a = m.alloc(Label::new(1), 4).unwrap();
        let b = m.alloc(Label::new(2), 4).unwrap();
        m.add_dependency(m.region_of(a), m.region_of(b));
        assert!((m.mean_dep_list_len() - 0.5).abs() < 1e-9);
    }
}
