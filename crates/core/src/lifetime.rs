//! Per-allocation-site lifetime profiles driving pretenuring into H2.
//!
//! Deca-style lifetime-based placement: partition data is bound to its
//! allocation site (the framework's [`Label`]), and sites whose objects
//! demonstrably survive minor collections are *pretenured* — allocated
//! straight into region-grouped H2 storage, skipping survivor copying
//! entirely.
//!
//! The profiler samples the charge paths that already exist:
//!
//! * `h2_tag_root` records the tagged words per site (the denominator);
//! * the minor-GC copy loop records tagged words that survive a scavenge;
//! * the major-GC compact phase records tagged words promoted to H2.
//!
//! All recording is gated on a single `enabled` flag (off by default, so
//! the static-policy goldens stay bit-identical), charges nothing to the
//! simulated clock, and allocates only on the first sighting of a label:
//! sites live in a sorted `Vec` probed by binary search, matching the
//! PR 2 zero-allocation convention for GC hot paths.
//!
//! The pretenure decision is a pure function of the recorded counters, so
//! it is deterministic under seed replay and *sticky*: pretenured
//! allocations are recorded separately and never dilute the observed H1
//! history that justified the decision.

use crate::policy::Label;

/// Survival statistics for one allocation site (one [`Label`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Words tagged for this site that were allocated in H1.
    pub tagged_words: u64,
    /// Objects tagged for this site that were allocated in H1.
    pub tagged_objects: u64,
    /// Tagged words that survived a minor-GC copy (aged or tenured).
    pub survived_words: u64,
    /// Tagged words promoted to H2 by a major GC.
    pub promoted_words: u64,
    /// Words allocated directly into H2 because the site was pretenured.
    pub pretenured_words: u64,
    /// Objects allocated directly into H2 because the site was pretenured.
    pub pretenured_objects: u64,
}

impl SiteStats {
    /// Words observed to be long-lived: survivors plus H2 promotions.
    pub fn long_lived_words(&self) -> u64 {
        self.survived_words + self.promoted_words
    }

    /// Long-lived words per thousand tagged words (0 when nothing tagged).
    pub fn survival_permille(&self) -> u64 {
        self.long_lived_words()
            .saturating_mul(1000)
            .checked_div(self.tagged_words)
            .unwrap_or(0)
    }
}

/// Per-site lifetime profiles with a tenure-threshold pretenure rule.
#[derive(Debug, Clone)]
pub struct LifetimeProfiles {
    enabled: bool,
    /// `(label id, stats)` sorted by label id; binary-search probed so the
    /// steady state allocates nothing.
    sites: Vec<(u64, SiteStats)>,
    threshold_permille: u64,
    min_long_lived_words: u64,
}

impl LifetimeProfiles {
    /// Default tenure threshold: ≥60% of a site's tagged words must have
    /// survived a minor GC (or reached H2) before the site pretenures.
    pub const DEFAULT_THRESHOLD_PERMILLE: u64 = 600;

    /// Default evidence floor: a site must show this many long-lived words
    /// before the ratio is trusted (a single surviving object is noise).
    pub const DEFAULT_MIN_LONG_LIVED_WORDS: u64 = 512;

    /// Creates a disabled profiler with the default thresholds.
    pub fn new() -> Self {
        LifetimeProfiles {
            enabled: false,
            sites: Vec::new(),
            threshold_permille: Self::DEFAULT_THRESHOLD_PERMILLE,
            min_long_lived_words: Self::DEFAULT_MIN_LONG_LIVED_WORDS,
        }
    }

    /// Sets the tenure threshold in permille of tagged words.
    pub fn with_threshold_permille(mut self, permille: u64) -> Self {
        self.threshold_permille = permille.min(1000);
        self
    }

    /// Sets the long-lived-words evidence floor.
    pub fn with_min_long_lived_words(mut self, words: u64) -> Self {
        self.min_long_lived_words = words;
        self
    }

    /// Turns profiling (and therefore pretenuring) on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether profiling is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn stats_mut(&mut self, label: Label) -> &mut SiteStats {
        let id = label.id();
        match self.sites.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(i) => &mut self.sites[i].1,
            Err(i) => {
                // First sighting: the only allocating path.
                self.sites.insert(i, (id, SiteStats::default()));
                &mut self.sites[i].1
            }
        }
    }

    /// Records an H1 allocation tagged for `label` (`h2_tag_root` path).
    pub fn record_tag(&mut self, label: Label, words: u64) {
        if !self.enabled {
            return;
        }
        let s = self.stats_mut(label);
        s.tagged_words += words;
        s.tagged_objects += 1;
    }

    /// Records a tagged object surviving a minor-GC copy.
    pub fn record_survival(&mut self, label: Label, words: u64) {
        if !self.enabled {
            return;
        }
        self.stats_mut(label).survived_words += words;
    }

    /// Records tagged words promoted to H2 by a major GC.
    pub fn record_promotion(&mut self, label: Label, words: u64) {
        if !self.enabled {
            return;
        }
        self.stats_mut(label).promoted_words += words;
    }

    /// Records a pretenured allocation (kept out of the tagged-words
    /// denominator so the decision that justified it stays stable).
    pub fn record_pretenure(&mut self, label: Label, words: u64) {
        if !self.enabled {
            return;
        }
        let s = self.stats_mut(label);
        s.pretenured_words += words;
        s.pretenured_objects += 1;
    }

    /// Whether allocations at `label`'s site should go straight to H2:
    /// enough long-lived evidence, and the long-lived fraction of the
    /// site's observed H1 history crosses the tenure threshold.
    pub fn should_pretenure(&self, label: Label) -> bool {
        if !self.enabled {
            return false;
        }
        match self.stats(label) {
            None => false,
            Some(s) => {
                s.long_lived_words() >= self.min_long_lived_words
                    && s.survival_permille() >= self.threshold_permille
            }
        }
    }

    /// The recorded stats for `label`, if any.
    pub fn stats(&self, label: Label) -> Option<&SiteStats> {
        self.sites
            .binary_search_by_key(&label.id(), |&(k, _)| k)
            .ok()
            .map(|i| &self.sites[i].1)
    }

    /// Iterates `(label, stats)` in label-id order.
    pub fn sites(&self) -> impl Iterator<Item = (Label, &SiteStats)> {
        self.sites.iter().map(|(id, s)| (Label::new(*id), s))
    }

    /// Number of sites with recorded history.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site has recorded history.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

impl Default for LifetimeProfiles {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = LifetimeProfiles::new();
        p.record_tag(Label::new(1), 100);
        p.record_survival(Label::new(1), 100);
        assert!(p.is_empty());
        assert!(!p.should_pretenure(Label::new(1)));
    }

    #[test]
    fn pretenure_needs_both_ratio_and_evidence() {
        let mut p = LifetimeProfiles::new()
            .with_threshold_permille(600)
            .with_min_long_lived_words(512);
        p.set_enabled(true);
        let l = Label::new(7);
        p.record_tag(l, 1000);
        // High ratio but under the evidence floor at small volume.
        p.record_survival(l, 400);
        assert!(!p.should_pretenure(l), "400 < 512 evidence floor");
        p.record_survival(l, 200);
        assert!(p.should_pretenure(l), "600/1000 ≥ 60% and ≥ 512 words");
    }

    #[test]
    fn short_lived_site_never_pretenures() {
        let mut p = LifetimeProfiles::new();
        p.set_enabled(true);
        let l = Label::new(2);
        for _ in 0..100 {
            p.record_tag(l, 100);
        }
        p.record_survival(l, 600); // 600/10000 = 6%
        assert!(!p.should_pretenure(l));
    }

    #[test]
    fn promotions_count_as_long_lived() {
        let mut p = LifetimeProfiles::new();
        p.set_enabled(true);
        let l = Label::new(3);
        p.record_tag(l, 800);
        p.record_promotion(l, 640);
        assert!(p.should_pretenure(l));
    }

    #[test]
    fn pretenured_words_do_not_dilute_the_decision() {
        let mut p = LifetimeProfiles::new();
        p.set_enabled(true);
        let l = Label::new(4);
        p.record_tag(l, 1000);
        p.record_survival(l, 900);
        assert!(p.should_pretenure(l));
        for _ in 0..1000 {
            p.record_pretenure(l, 4096);
        }
        assert!(p.should_pretenure(l), "decision is sticky");
        let s = p.stats(l).unwrap();
        assert_eq!(s.tagged_words, 1000);
        assert_eq!(s.pretenured_objects, 1000);
    }

    #[test]
    fn sites_iterate_in_label_order() {
        let mut p = LifetimeProfiles::new();
        p.set_enabled(true);
        for id in [9u64, 3, 7, 1] {
            p.record_tag(Label::new(id), 10);
        }
        let ids: Vec<u64> = p.sites().map(|(l, _)| l.id()).collect();
        assert_eq!(ids, vec![1, 3, 7, 9]);
    }
}
