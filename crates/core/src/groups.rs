//! Union-find region groups — the simpler liveness alternative (§3.3).
//!
//! Instead of tracking the *direction* of cross-region references with
//! dependency lists, region groups logically merge the source and
//! destination regions of every cross-region reference. A group is live if
//! any of its regions is referenced from H1, and only whole dead groups can
//! be reclaimed. This misses reclamation opportunities: with X→Y→Z and only
//! Z referenced from H1, the directional scheme reclaims X and Y while the
//! group scheme reclaims nothing. The paper keeps the directional scheme;
//! this module exists for the ablation benchmark that quantifies the gap.

use crate::region::RegionId;

/// Union-find over H2 regions, merging regions connected by any
/// cross-region reference (direction-insensitive).
#[derive(Debug, Clone)]
pub struct RegionGroups {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl RegionGroups {
    /// Creates `n` singleton groups.
    pub fn new(n: usize) -> Self {
        RegionGroups {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of regions tracked.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no regions are tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The canonical representative of `r`'s group.
    pub fn find(&mut self, r: RegionId) -> RegionId {
        let mut x = r.0;
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        RegionId(x)
    }

    /// Merges the groups of `a` and `b` (called on any cross-region
    /// reference between them, regardless of direction).
    pub fn merge(&mut self, a: RegionId, b: RegionId) {
        let ra = self.find(a).0 as usize;
        let rb = self.find(b).0 as usize;
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
    }

    /// Whether `a` and `b` are in the same group.
    pub fn same_group(&mut self, a: RegionId, b: RegionId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Given per-region "referenced from H1" bits, returns per-region
    /// liveness under group semantics: a region is live iff *any* region in
    /// its group is referenced from H1.
    pub fn group_liveness(&mut self, h1_referenced: &[bool]) -> Vec<bool> {
        assert_eq!(h1_referenced.len(), self.parent.len());
        let n = self.parent.len();
        let mut group_live = vec![false; n];
        for (i, &referenced) in h1_referenced.iter().enumerate() {
            if referenced {
                let root = self.find(RegionId(i as u32)).0 as usize;
                group_live[root] = true;
            }
        }
        (0..n)
            .map(|i| group_live[self.find(RegionId(i as u32)).0 as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_group() {
        let mut g = RegionGroups::new(3);
        assert!(!g.same_group(RegionId(0), RegionId(1)));
        assert_eq!(g.find(RegionId(2)), RegionId(2));
    }

    #[test]
    fn merge_is_transitive_and_symmetric() {
        let mut g = RegionGroups::new(4);
        g.merge(RegionId(0), RegionId(1));
        g.merge(RegionId(2), RegionId(1));
        assert!(g.same_group(RegionId(0), RegionId(2)));
        assert!(!g.same_group(RegionId(0), RegionId(3)));
    }

    #[test]
    fn chain_keeps_whole_group_alive() {
        // X -> Y -> Z with only Z referenced from H1: group semantics keep
        // all three alive (the directional scheme reclaims X and Y — see
        // region::tests::liveness_propagates_along_direction).
        let mut g = RegionGroups::new(3);
        g.merge(RegionId(0), RegionId(1));
        g.merge(RegionId(1), RegionId(2));
        let live = g.group_liveness(&[false, false, true]);
        assert_eq!(live, vec![true, true, true]);
    }

    #[test]
    fn dead_group_is_fully_reclaimable() {
        let mut g = RegionGroups::new(4);
        g.merge(RegionId(0), RegionId(1));
        // Regions 2,3 separate group.
        g.merge(RegionId(2), RegionId(3));
        let live = g.group_liveness(&[true, false, false, false]);
        assert_eq!(live, vec![true, true, false, false]);
    }

    #[test]
    fn group_liveness_is_superset_of_direct_marks() {
        let mut g = RegionGroups::new(5);
        g.merge(RegionId(0), RegionId(4));
        let marks = [false, true, false, false, false];
        let live = g.group_liveness(&marks);
        for (i, &m) in marks.iter().enumerate() {
            if m {
                assert!(live[i], "directly marked region must be group-live");
            }
        }
    }
}
