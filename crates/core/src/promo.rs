//! Promotion buffers: batched, explicit asynchronous I/O for H1→H2 moves.
//!
//! Moving marked objects to H2 happens during the compaction phase of major
//! GC. Writing each (usually small, <1 MB) object with its own system call
//! or through demand paging would be slow, so TeraHeap keeps a 2 MB
//! *promotion buffer per open region* and writes objects to the device in
//! batches (§3.2). This module tracks buffer occupancy and reports when a
//! batch flush happens; the [`crate::h2::H2`] facade charges the device
//! write cost at flush time.

use crate::region::RegionId;
use std::collections::HashMap;

/// Default promotion-buffer size: 2 MB, as in the paper.
pub const DEFAULT_BUFFER_BYTES: usize = 2 << 20;

/// Tracks per-region promotion buffers during a major GC's compaction phase.
#[derive(Debug)]
pub struct Promoter {
    buffer_bytes: usize,
    pending: HashMap<RegionId, usize>,
    flushes: u64,
    bytes_flushed: u64,
}

impl Promoter {
    /// Creates a promoter with `buffer_bytes`-sized per-region buffers.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_bytes` is zero.
    pub fn new(buffer_bytes: usize) -> Self {
        assert!(buffer_bytes > 0, "promotion buffer must be non-empty");
        Promoter {
            buffer_bytes,
            pending: HashMap::new(),
            flushes: 0,
            bytes_flushed: 0,
        }
    }

    /// Buffer capacity in bytes.
    pub fn buffer_bytes(&self) -> usize {
        self.buffer_bytes
    }

    /// Total batch flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Total bytes written to the device through the buffers.
    pub fn bytes_flushed(&self) -> u64 {
        self.bytes_flushed
    }

    /// Stages `bytes` of object data headed for `region`. Returns the bytes
    /// flushed to the device by this call (0 if the buffer still has room).
    pub fn stage(&mut self, region: RegionId, bytes: usize) -> usize {
        let slot = self.pending.entry(region).or_insert(0);
        *slot += bytes;
        // Closed form: a staged run crossing the buffer boundary n times
        // flushes n full batches, however large the object.
        let batches = *slot / self.buffer_bytes;
        let flushed = batches * self.buffer_bytes;
        *slot -= flushed;
        self.flushes += batches as u64;
        self.bytes_flushed += flushed as u64;
        flushed
    }

    /// Bytes currently pending (staged, unflushed) for `region`.
    pub fn pending_of(&self, region: RegionId) -> usize {
        self.pending.get(&region).copied().unwrap_or(0)
    }

    /// All regions with pending bytes, sorted by region id — the snapshot
    /// [`Promoter::flush_all`] callers take first when a fault plane may
    /// fail the flush and force [`Promoter::unstage`].
    pub fn pending_regions(&self) -> Vec<(RegionId, usize)> {
        let mut v: Vec<(RegionId, usize)> = self
            .pending
            .iter()
            .filter(|&(_, &slot)| slot > 0)
            .map(|(&r, &slot)| (r, slot))
            .collect();
        v.sort_unstable();
        v
    }

    /// Rolls back one reported flush of `bytes` for `region` after the
    /// device write failed past its retry budget: the bytes go back to
    /// pending (they are still only in DRAM) and the flush counters are
    /// un-charged, so accounting reflects what actually reached the device.
    pub fn unstage(&mut self, region: RegionId, bytes: usize) {
        if bytes == 0 {
            return;
        }
        *self.pending.entry(region).or_insert(0) += bytes;
        self.bytes_flushed = self.bytes_flushed.saturating_sub(bytes as u64);
        self.flushes = self.flushes.saturating_sub(1);
    }

    /// Drops all pending bytes without flushing (crash recovery: the staged
    /// data died with DRAM).
    pub fn reset_pending(&mut self) {
        self.pending.clear();
    }

    /// Flushes every partially-filled buffer (end of compaction), visiting
    /// regions in sorted order so any per-flush cost or event emission is
    /// deterministic across runs (a bare `HashMap` walk is not). Returns
    /// the total bytes written.
    pub fn flush_all(&mut self) -> usize {
        let mut regions: Vec<RegionId> = self
            .pending
            .iter()
            .filter(|&(_, &slot)| slot > 0)
            .map(|(&r, _)| r)
            .collect();
        regions.sort_unstable();
        let mut flushed = 0;
        for region in regions {
            flushed += self.pending[&region];
            self.flushes += 1;
        }
        self.pending.clear();
        self.bytes_flushed += flushed as u64;
        flushed
    }
}

impl Default for Promoter {
    fn default() -> Self {
        Self::new(DEFAULT_BUFFER_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_objects_batch_until_full() {
        let mut p = Promoter::new(1000);
        assert_eq!(p.stage(RegionId(0), 400), 0);
        assert_eq!(p.stage(RegionId(0), 400), 0);
        // Third stage crosses the 1000-byte boundary: one batch goes out.
        assert_eq!(p.stage(RegionId(0), 400), 1000);
        assert_eq!(p.flushes(), 1);
        // 200 bytes remain pending.
        assert_eq!(p.flush_all(), 200);
        assert_eq!(p.bytes_flushed(), 1200);
    }

    #[test]
    fn regions_have_independent_buffers() {
        let mut p = Promoter::new(1000);
        p.stage(RegionId(0), 600);
        assert_eq!(p.stage(RegionId(1), 600), 0, "separate buffer per region");
        assert_eq!(p.flush_all(), 1200);
    }

    #[test]
    fn huge_object_flushes_multiple_batches() {
        let mut p = Promoter::new(1000);
        assert_eq!(p.stage(RegionId(0), 3500), 3000);
        assert_eq!(p.flushes(), 3);
        assert_eq!(p.flush_all(), 500);
    }

    #[test]
    fn flush_all_is_idempotent() {
        let mut p = Promoter::new(100);
        p.stage(RegionId(0), 50);
        assert_eq!(p.flush_all(), 50);
        assert_eq!(p.flush_all(), 0);
    }
}
