//! TeraHeap's second-heap (H2) mechanisms — the paper's primary contribution.
//!
//! TeraHeap (ASPLOS 2023) extends a managed runtime with a second,
//! high-capacity heap (H2) memory-mapped over a fast storage device,
//! coexisting with the regular DRAM heap (H1). This crate implements every
//! H2-side mechanism from §3 of the paper:
//!
//! * [`region::RegionManager`] — H2 organized as a region-based heap with
//!   per-region metadata in DRAM: start/top pointers, a live bit and a
//!   *dependency list* recording outgoing cross-region references (§3.3,
//!   Figure 2). Dead regions are reclaimed lazily in bulk, never compacted.
//! * [`groups::RegionGroups`] — the simpler union-find alternative that
//!   merges regions connected by references into groups, losing reference
//!   direction (§3.3 explores and rejects this; we keep it for the ablation).
//! * [`card::H2CardTable`] — the extended card table tracking backward
//!   (H2→H1) references with four states (clean/dirty/youngGen/oldGen) and
//!   stripe/slice organization for contention-free parallel scanning (§3.4,
//!   Figure 3).
//! * [`policy::TransferPolicy`] — the hint-based interface state
//!   (`h2_tag_root` labels + `h2_move` requests) and the high/low-threshold
//!   mechanism that bounds H1 pressure (§3.2).
//! * [`promo::Promoter`] — 2 MB per-region promotion buffers batching object
//!   moves to the device with explicit asynchronous I/O (§3.2).
//! * [`h2::H2`] — the composite facade the runtime's garbage collector drives.
//!
//! The runtime crate (`teraheap-runtime`) owns object layout and the garbage
//! collector; this crate owns all H2 bookkeeping and device cost accounting.
//!
//! # Example
//!
//! ```
//! use teraheap_core::{H2, H2Config, Label};
//! use teraheap_storage::{Category, DeviceSpec, SimClock};
//! use std::sync::Arc;
//!
//! let clock = Arc::new(SimClock::new());
//! let mut h2 = H2::new(H2Config::default(), DeviceSpec::nvme_ssd(), clock);
//! let label = Label::new(1);
//! let addr = h2.alloc(label, 16).expect("H2 has space");
//! assert!(addr.is_h2());
//! ```

pub mod addr;
pub mod card;
pub mod groups;
pub mod h2;
pub mod lifetime;
pub mod policy;
pub mod promo;
pub mod region;

pub use addr::{Addr, H2_BASE_WORDS, NULL, WORD_BYTES};
pub use card::{CardState, H2CardTable};
pub use groups::RegionGroups;
pub use h2::{H2Config, H2ConfigBuilder, H2ConfigError, H2Error, RecoveryReport, H2};
pub use lifetime::{LifetimeProfiles, SiteStats};
pub use policy::{Label, TransferPolicy};
pub use promo::Promoter;
pub use region::{RegionId, RegionManager, RegionSnapshot, RegionStats};
