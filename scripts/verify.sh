#!/usr/bin/env bash
# Tier-1 verification plus the hermeticity guard.
#
# The workspace is zero-dependency by design (see crates/util): every crate
# depends only on path = ... workspace members and std, so a clean checkout
# builds fully offline. This script fails if
#   1. any Cargo.toml grows a non-path (registry) dependency, or
#   2. the offline release build or test suite fails.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermeticity guard: no registry dependencies =="
# A registry dependency line looks like `name = "1.2"` or
# `name = { version = "1", ... }`. Package-metadata keys (version, edition,
# rust-version, resolver) are the only legitimate `key = "literal"` lines.
violations=$(grep -nE '^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*("[0-9^~<>=*]|\{[^}]*\bversion\b)' \
    Cargo.toml crates/*/Cargo.toml \
    | grep -vE ':[0-9]+:[[:space:]]*(version|edition|rust-version|resolver)[[:space:]]*=' \
    || true)
if [[ -n "$violations" ]]; then
    echo "ERROR: non-path dependencies found (the workspace must stay hermetic):" >&2
    echo "$violations" >&2
    exit 1
fi
# Dotted dependency sections (`[dependencies.foo]` + `version = ...`) would
# slip past the line-based check above because `version` is an allowed key;
# the workspace uses none, so reject the section form outright.
if grep -nE '^\[[A-Za-z-]*dependencies\.' Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: dotted dependency section found; use inline path/workspace deps." >&2
    exit 1
fi
# Belt and braces: the historical external crates must never reappear.
if grep -nE '^[^#]*\b(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde)[[:space:]]*=' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: external crate dependency reintroduced." >&2
    exit 1
fi
echo "ok"

echo "== offline release build =="
cargo build --release --offline --workspace

echo "== offline tests =="
cargo test -q --offline --workspace

echo "verify: all checks passed"
