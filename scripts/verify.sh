#!/usr/bin/env bash
# Tier-1 verification plus the hermeticity guard.
#
# The workspace is zero-dependency by design (see crates/util): every crate
# depends only on path = ... workspace members and std, so a clean checkout
# builds fully offline. This script fails if
#   1. any Cargo.toml grows a non-path (registry) dependency, or
#   2. the offline release build or test suite fails.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermeticity guard: no registry dependencies =="
# A registry dependency line looks like `name = "1.2"` or
# `name = { version = "1", ... }`. Package-metadata keys (version, edition,
# rust-version, resolver) are the only legitimate `key = "literal"` lines.
violations=$(grep -nE '^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*("[0-9^~<>=*]|\{[^}]*\bversion\b)' \
    Cargo.toml crates/*/Cargo.toml \
    | grep -vE ':[0-9]+:[[:space:]]*(version|edition|rust-version|resolver)[[:space:]]*=' \
    || true)
if [[ -n "$violations" ]]; then
    echo "ERROR: non-path dependencies found (the workspace must stay hermetic):" >&2
    echo "$violations" >&2
    exit 1
fi
# Dotted dependency sections (`[dependencies.foo]` + `version = ...`) would
# slip past the line-based check above because `version` is an allowed key;
# the workspace uses none, so reject the section form outright.
if grep -nE '^\[[A-Za-z-]*dependencies\.' Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: dotted dependency section found; use inline path/workspace deps." >&2
    exit 1
fi
# Belt and braces: the historical external crates must never reappear.
if grep -nE '^[^#]*\b(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde)[[:space:]]*=' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: external crate dependency reintroduced." >&2
    exit 1
fi
echo "ok"

echo "== offline release build =="
cargo build --release --offline --workspace

echo "== offline tests =="
cargo test -q --offline --workspace

echo "== lints: clippy -D warnings =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings
echo "ok"

# Flight-recorder invariant (DESIGN.md §8): tracing observes the clock and
# never advances it. Run the suite explicitly even though the workspace
# test pass above includes it, so a skipped/filtered test run cannot hide
# a trace-equivalence regression.
echo "== trace equivalence: tracing never perturbs simulated time =="
cargo test -q --offline -p teraheap-runtime --test trace_equivalence
echo "ok"

# Work-unit scheduler invariants (DESIGN.md §11): gc_threads=1 must
# reproduce the pre-refactor serial collector bit-identically, and lane
# accounting must be deterministic across runs, thread counts, and host
# parallelism. Run both suites explicitly.
echo "== lane equivalence: serial golden + lane determinism =="
cargo test -q --offline -p teraheap-runtime --test gc_equivalence
cargo test -q --offline -p teraheap-runtime --test lane_determinism
echo "ok"

# Incremental-collection invariants (DESIGN.md §12): a pause-budgeted run
# must converge to the same logical heap as the stop-world collector at any
# budget and lane count, slices must replay bit-identically, and the armed
# but idle barrier (pause_budget_ns = u64::MAX) must reproduce the
# stop-world golden. Run the suite explicitly.
echo "== incremental equivalence: sliced majors converge to stop-world =="
cargo test -q --offline -p teraheap-runtime --test incremental_marking
echo "ok"

# Bulk-access-plane invariant (DESIGN.md §9): touch_run must be bit-identical
# to the word-at-a-time loop — same ns, same counters, same events. Run the
# property suite explicitly for the same reason as above.
echo "== bulk equivalence: batched touches match the per-word loop =="
cargo test -q --offline -p teraheap-storage --test bulk_equivalence
echo "ok"

# Fault-plane invariants (DESIGN.md §10): the crash-consistency sweep must
# pass at every write-back boundary with zero silent-corruption escapes, the
# recovery property suite must hold, and a zero-rate plane must be
# bit-identical to no plane at all. Run the three suites explicitly so a
# filtered test run cannot hide a regression.
echo "== faults: crash-consistency sweep, recovery properties, differential =="
cargo test -q --offline -p teraheap-storage --test crash_consistency
cargo test -q --offline -p teraheap-runtime --test fault_recovery
cargo test -q --offline -p teraheap-runtime --test fault_equivalence
echo "ok"

# Shared-device invariants (DESIGN.md §13): the one-tenant arbitrated path
# must reproduce the pre-redesign private-device goldens bit-identically
# (both through attach_h2 and the deprecated shim), N-tenant server runs
# must be deterministic with typed config rejection, and one tenant's
# injected crash must leave its neighbours' simulated time, heap census and
# arbitration counters untouched. Run the three suites explicitly.
echo "== shared device: tenant equivalence, server plane, fault isolation =="
cargo test -q --offline -p teraheap-runtime --test gc_equivalence -- \
    deprecated_shim_matches_golden sole_tenant_arbitration_is_queueless
cargo test -q --offline -p teraheap-server
cargo test -q --offline -p teraheap-runtime --test fault_isolation
echo "ok"

# Adaptive-placement invariants (DESIGN.md §14): the lifetime profiler must
# replay bit-identically and never retract a pretenure decision, region
# group liveness must be merge-order invariant, and the placement cost
# model must be deterministic and monotone in device latency and S/D cost.
# Run both property suites explicitly.
echo "== adaptive placement: lifetime-profile + cost-model properties =="
cargo test -q --offline -p teraheap-core --test properties
cargo test -q --offline -p mini-spark --test placement_properties
echo "ok"

# Query-plane invariants (DESIGN.md §15): the executor must match its
# naive oracle with the index plan answer-bit-equal to the full scan and
# answers invariant across runtime knobs; the retriever-style endurance
# loop must stay leak-free with the heap checker armed; and with the query
# crate linked but idle the runtime golden must reproduce bit-identically
# (the events, labeled entry points and server variant cost nothing
# unused). Run the three suites explicitly.
echo "== query plane: oracle properties, endurance churn, linked-idle golden =="
cargo test -q --offline -p teraheap-query --test query_properties
cargo test -q --offline -p teraheap-query --test endurance
cargo test -q --offline -p teraheap-query --test gc_equivalence
echo "ok"

# Faults smoke stage: one seeded chaos run per device profile (NVMe page
# cache, Optane NVM, DRAM-DAX), injected through the production
# TERAHEAP_FAULTS path with the full-heap checker armed at every GC
# boundary. The fixed seed keeps the stage replayable bit-for-bit.
echo "== faults smoke: seeded chaos per device profile =="
chaos="seed=20260806,read_err_ppm=20000,write_err_ppm=20000,max_retries=4,backoff_ns=50000,spike_every=512,spike_len=32,spike_mult=8"
for profile in nvme nvm dax; do
    echo "  chaos profile: $profile"
    TERAHEAP_FAULTS="$chaos" TERAHEAP_HEAP_CHECK=1 \
        cargo test -q --offline -p teraheap-runtime --test fault_recovery \
        "chaos_smoke_${profile}" >/dev/null
done
echo "ok"

# Simulated-determinism guard: every committed figure CSV must regenerate
# bit-identically. Simulated time is a pure function of the cost model and
# the deterministic workloads, so any diff here means a change quietly
# altered experiment results. microbench.csv is excluded (it records real
# wall-clock times). Skip with VERIFY_SKIP_RESULTS=1 for a quick check.
if [[ "${VERIFY_SKIP_RESULTS:-0}" != "1" ]]; then
    echo "== results determinism: regenerate and diff results/*.csv =="
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    cp -r results "$tmp/committed"
    for bin in fig6_spark fig6_giraph fig7_timeline fig8_collectors \
               fig9_hints fig10_regions fig11_gc_overhead fig12_nvm \
               fig13_scaling fig13_gc_threads fig14_pause_cdf \
               fig15_tenants fig16_placement fig17_query table5_metadata \
               ablations; do
        echo "  regenerating: $bin"
        cargo run -q --release --offline -p teraheap-bench --bin "$bin" >/dev/null
    done
    if ! diff -rq -x microbench.csv "$tmp/committed" results; then
        echo "ERROR: regenerated results differ from committed CSVs." >&2
        echo "Simulated time must be deterministic; if the change is an" >&2
        echo "intentional cost-model/bug fix, re-commit the CSVs and say so" >&2
        echo "in the PR (see crates/runtime/tests/gc_equivalence.rs)." >&2
        exit 1
    fi
    echo "ok"
fi

echo "verify: all checks passed"
