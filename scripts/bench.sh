#!/usr/bin/env bash
# Wall-clock performance baseline: runs the micro-benchmarks and every
# figure binary in release mode and writes BENCH_<name>.json with per-binary
# wall-clock seconds plus machine info, so future PRs can compare against a
# recorded baseline instead of folklore.
#
# Usage: scripts/bench.sh [name]     (default name: baseline)
#   BENCH_SKIP_MICRO=1   skip the micro-benchmark pass
#   TERAHEAP_BENCH_THREADS=N  thread count for the parallel fig drivers
set -euo pipefail
cd "$(dirname "$0")/.."

name="${1:-baseline}"
out="BENCH_${name}.json"

fig_bins=(fig6_spark fig6_giraph fig7_timeline fig8_collectors fig9_hints
          fig10_regions fig11_gc_overhead fig12_nvm fig13_scaling
          table5_metadata ablations)

echo "== release build =="
cargo build --release --offline --workspace

now_ms() { date +%s%3N; }

declare -A secs
if [[ "${BENCH_SKIP_MICRO:-0}" != "1" ]]; then
    echo "== micro =="
    t0=$(now_ms)
    cargo run -q --release -p teraheap-bench --bin micro >/dev/null
    secs[micro]=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
    echo "micro: ${secs[micro]}s"
fi

for b in "${fig_bins[@]}"; do
    echo "== $b =="
    t0=$(now_ms)
    cargo run -q --release -p teraheap-bench --bin "$b" >/dev/null
    secs[$b]=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
    echo "$b: ${secs[$b]}s"
done

threads="${TERAHEAP_BENCH_THREADS:-$(nproc)}"
{
    echo "{"
    echo "  \"name\": \"${name}\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"machine\": {"
    echo "    \"kernel\": \"$(uname -sr)\","
    echo "    \"cpu\": \"$(grep -m1 '^model name' /proc/cpuinfo | cut -d: -f2- | sed 's/^ //' || echo unknown)\","
    echo "    \"cores\": $(nproc),"
    echo "    \"bench_threads\": ${threads},"
    echo "    \"mem_kb\": $(grep -m1 MemTotal /proc/meminfo | awk '{print $2}')"
    echo "  },"
    echo "  \"wall_clock_secs\": {"
    sep=""
    for b in micro "${fig_bins[@]}"; do
        [[ -v "secs[$b]" ]] || continue
        printf '%s    "%s": %s' "$sep" "$b" "${secs[$b]}"
        sep=$',\n'
    done
    printf '\n  }\n}\n'
} > "$out"

echo "wrote $out"
