#!/usr/bin/env bash
# Wall-clock performance baseline: runs the micro-benchmarks and every
# figure binary in release mode and writes BENCH_<name>.json with per-binary
# wall-clock seconds plus machine info, so future PRs can compare against a
# recorded baseline instead of folklore.
#
# Usage: scripts/bench.sh [name]     (default name: baseline)
#   BENCH_SKIP_MICRO=1   skip the micro-benchmark pass
#   TERAHEAP_BENCH_THREADS=N  thread count for the parallel fig drivers
#
# Named baselines: `scripts/bench.sh storage` records the bulk-access-plane
# numbers as BENCH_storage_bulk.json (compare against BENCH_gc_hotpath.json).
#
# Special mode: scripts/bench.sh obs
#   Measures the flight recorder's wall-clock overhead by running every
#   figure binary with TERAHEAP_OBS=full vs TERAHEAP_OBS=off (best of
#   BENCH_OBS_REPS runs each, default 3) and writes BENCH_obs.json with
#   per-binary and aggregate overhead. Target: < 5% at the default level.
#
# Special mode: scripts/bench.sh faults
#   Records the fault-plane-era wall-clock numbers (fault plane disabled, as
#   the figure binaries run it) as BENCH_faults.json, best of
#   BENCH_FAULT_REPS runs (default 3), and gates fig6_spark against the
#   BENCH_storage_bulk.json baseline: the dormant fault hooks must cost
#   < 2% wall-clock.
#
# Special mode: scripts/bench.sh gc_par
#   Measures the work-unit scheduler's host overhead: runs the
#   fig13_gc_threads sweep pinned to gc_threads=1 vs gc_threads=4
#   (TERAHEAP_GC_THREADS — identical simulation work, only the lane count
#   differs), best of BENCH_GCPAR_REPS runs each (default 5), and writes
#   BENCH_gc_parallel.json. Gate: the single-lane (serial-equivalent) run
#   must cost < 2% wall-clock over the 4-lane run.
#
# Special mode: scripts/bench.sh gc_incr
#   Measures the incremental-collection era's host overhead and writes
#   BENCH_gc_incremental.json. Two gates:
#     1. fig6_spark (stop-world config, the incremental hooks dormant) must
#        stay < 2% over the BENCH_faults.json baseline — the SATB barrier
#        branches and slice polling in the charge paths must be free when
#        pause_budget_ns = 0.
#     2. the armed-idle barrier (pause_budget_ns = u64::MAX: hooks armed,
#        no cycle ever starts, simulation bit-identical to stop-world) must
#        cost < 5% wall-clock over budget 0 on the fig14 single-point run
#        (TERAHEAP_PAUSE_BUDGET), best of BENCH_GCINCR_REPS (default 5).
#
# Special mode: scripts/bench.sh tenants
#   Measures the shared-device era's host overhead and writes
#   BENCH_tenants.json. Every heap now attaches through a SharedDevice, so
#   every device charge passes the bandwidth arbiter even with one tenant;
#   gate: fig6_spark (single-tenant, arbitrated) must stay < 2% wall-clock
#   over the BENCH_gc_incremental.json baseline, best of BENCH_TENANT_REPS
#   runs (default 3). Also records the fig15_tenants multi-tenant sweep.
#
# Special mode: scripts/bench.sh placement
#   Measures the adaptive-placement era's host overhead and writes
#   BENCH_placement.json. The lifetime profiler and cost model are off in
#   every static configuration, so the figure binaries pay only the dormant
#   branch in the allocation and GC copy loops; gate: fig6_spark
#   (adaptive off) must stay < 2% wall-clock over the BENCH_tenants.json
#   baseline, best of BENCH_PLACEMENT_REPS runs (default 3). Also records
#   the fig16_placement ablation sweep.
#
# Special mode: scripts/bench.sh query
#   Measures the query-plane era's host overhead and writes
#   BENCH_query.json. The query crate is linked into the workspace but no
#   batch workload ever calls it, so the figure binaries pay only its
#   presence (code size, its obs event classes); gate: fig6_spark must stay
#   < 2% wall-clock over the BENCH_placement.json baseline, best of
#   BENCH_QUERY_REPS runs (default 3). Also records the fig17_query
#   session-latency sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

name="${1:-baseline}"
# The storage baseline's canonical file name predates the short CLI alias.
[[ "$name" == "storage" ]] && name="storage_bulk"
out="BENCH_${name}.json"

fig_bins=(fig6_spark fig6_giraph fig7_timeline fig8_collectors fig9_hints
          fig10_regions fig11_gc_overhead fig12_nvm fig13_scaling
          fig13_gc_threads fig14_pause_cdf fig15_tenants fig16_placement
          fig17_query table5_metadata ablations)

echo "== release build =="
cargo build --release --offline --workspace

now_ms() { date +%s%3N; }

if [[ "$name" == "obs" ]]; then
    reps="${BENCH_OBS_REPS:-3}"
    declare -A on_secs off_secs
    for mode in full off; do
        for b in "${fig_bins[@]}"; do
            best=""
            for _ in $(seq "$reps"); do
                t0=$(now_ms)
                TERAHEAP_OBS=$mode "target/release/$b" >/dev/null
                t=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
                if [[ -z "$best" ]] || awk "BEGIN{exit !($t < $best)}"; then
                    best=$t
                fi
            done
            if [[ "$mode" == full ]]; then on_secs[$b]=$best; else off_secs[$b]=$best; fi
            echo "$b ($mode): ${best}s"
        done
    done
    total_on=0; total_off=0
    {
        echo "{"
        echo "  \"name\": \"obs\","
        echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"reps\": ${reps},"
        echo "  \"target_overhead_percent\": 5.0,"
        echo "  \"bins\": {"
        sep=""
        for b in "${fig_bins[@]}"; do
            on=${on_secs[$b]}; off=${off_secs[$b]}
            total_on=$(awk "BEGIN{printf \"%.3f\", $total_on+$on}")
            total_off=$(awk "BEGIN{printf \"%.3f\", $total_off+$off}")
            pct=$(awk "BEGIN{printf \"%.2f\", ($on-$off)/$off*100}")
            printf '%s    "%s": {"tracing_on_secs": %s, "tracing_off_secs": %s, "overhead_percent": %s}' \
                "$sep" "$b" "$on" "$off" "$pct"
            sep=$',\n'
        done
        pct=$(awk "BEGIN{printf \"%.2f\", ($total_on-$total_off)/$total_off*100}")
        printf '\n  },\n'
        echo "  \"total_tracing_on_secs\": ${total_on},"
        echo "  \"total_tracing_off_secs\": ${total_off},"
        echo "  \"total_overhead_percent\": ${pct}"
        echo "}"
    } > "$out"
    echo "wrote $out (total overhead ${pct}%)"
    exit 0
fi

if [[ "$name" == "faults" ]]; then
    reps="${BENCH_FAULT_REPS:-3}"
    declare -A secs
    for b in "${fig_bins[@]}"; do
        best=""
        for _ in $(seq "$reps"); do
            t0=$(now_ms)
            "target/release/$b" >/dev/null
            t=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
            if [[ -z "$best" ]] || awk "BEGIN{exit !($t < $best)}"; then
                best=$t
            fi
        done
        secs[$b]=$best
        echo "$b: ${best}s (best of $reps)"
    done
    baseline=""
    if [[ -f BENCH_storage_bulk.json ]]; then
        baseline=$(sed -n 's/^[[:space:]]*"fig6_spark": \([0-9.]*\),*$/\1/p' \
            BENCH_storage_bulk.json | head -1)
    fi
    {
        echo "{"
        echo "  \"name\": \"faults\","
        echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"reps\": ${reps},"
        echo "  \"target_fig6_spark_regression_percent\": 2.0,"
        if [[ -n "$baseline" ]]; then
            pct=$(awk "BEGIN{printf \"%.2f\", (${secs[fig6_spark]}-$baseline)/$baseline*100}")
            echo "  \"baseline_fig6_spark_secs\": ${baseline},"
            echo "  \"fig6_spark_regression_percent\": ${pct},"
        fi
        echo "  \"wall_clock_secs\": {"
        sep=""
        for b in "${fig_bins[@]}"; do
            printf '%s    "%s": %s' "$sep" "$b" "${secs[$b]}"
            sep=$',\n'
        done
        printf '\n  }\n}\n'
    } > "$out"
    echo "wrote $out"
    if [[ -n "$baseline" ]]; then
        echo "fig6_spark: ${secs[fig6_spark]}s vs baseline ${baseline}s (${pct}%)"
        if awk "BEGIN{exit !($pct >= 2.0)}"; then
            echo "ERROR: fig6_spark regressed ${pct}% (>= 2% vs BENCH_storage_bulk.json)" >&2
            exit 1
        fi
    else
        echo "note: BENCH_storage_bulk.json not found; no regression gate applied"
    fi
    exit 0
fi

if [[ "$name" == "gc_par" ]]; then
    reps="${BENCH_GCPAR_REPS:-5}"
    declare -A lane_secs
    for lanes in 1 4; do
        best=""
        for _ in $(seq "$reps"); do
            t0=$(now_ms)
            TERAHEAP_GC_THREADS=$lanes target/release/fig13_gc_threads >/dev/null
            t=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
            if [[ -z "$best" ]] || awk "BEGIN{exit !($t < $best)}"; then
                best=$t
            fi
        done
        lane_secs[$lanes]=$best
        echo "fig13_gc_threads (gc_threads=$lanes): ${best}s (best of $reps)"
    done
    pct=$(awk "BEGIN{printf \"%.2f\", (${lane_secs[1]}-${lane_secs[4]})/${lane_secs[4]}*100}")
    {
        echo "{"
        echo "  \"name\": \"gc_parallel\","
        echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"reps\": ${reps},"
        echo "  \"target_serial_overhead_percent\": 2.0,"
        echo "  \"gc_threads_1_secs\": ${lane_secs[1]},"
        echo "  \"gc_threads_4_secs\": ${lane_secs[4]},"
        echo "  \"serial_overhead_percent\": ${pct}"
        echo "}"
    } > "BENCH_gc_parallel.json"
    echo "wrote BENCH_gc_parallel.json (gc_threads=1 overhead ${pct}% vs gc_threads=4)"
    if awk "BEGIN{exit !($pct >= 2.0)}"; then
        echo "ERROR: single-lane scheduling costs ${pct}% (>= 2%) over 4 lanes" >&2
        exit 1
    fi
    exit 0
fi

if [[ "$name" == "gc_incr" ]]; then
    reps="${BENCH_GCINCR_REPS:-5}"
    # Gate 1: dormant hooks on the big stop-world figure vs the recorded
    # fault-plane-era baseline.
    best=""
    for _ in $(seq "$reps"); do
        t0=$(now_ms)
        target/release/fig6_spark >/dev/null
        t=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
        if [[ -z "$best" ]] || awk "BEGIN{exit !($t < $best)}"; then
            best=$t
        fi
    done
    spark_secs=$best
    echo "fig6_spark (hooks dormant): ${spark_secs}s (best of $reps)"
    baseline=""
    if [[ -f BENCH_faults.json ]]; then
        baseline=$(sed -n 's/^[[:space:]]*"fig6_spark": \([0-9.]*\),*$/\1/p' \
            BENCH_faults.json | head -1)
    fi
    # Gate 2: armed-idle barrier vs stop-world on the fig14 single-point
    # run. Both budgets simulate identically (u64::MAX never starts a
    # cycle); the wall-clock delta is pure host cost of the armed hooks.
    # The single-point run is a few ms, below the timer's resolution, so
    # each timed sample loops it BENCH_GCINCR_ITERS times; budgets
    # interleave within each rep so background load drift cancels out.
    iters="${BENCH_GCINCR_ITERS:-100}"
    declare -A armed_secs
    for _ in $(seq "$reps"); do
        for budget in 0 18446744073709551615; do
            t0=$(now_ms)
            for _ in $(seq "$iters"); do
                TERAHEAP_PAUSE_BUDGET=$budget target/release/fig14_pause_cdf >/dev/null
            done
            t=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
            if [[ ! -v "armed_secs[$budget]" ]] \
                || awk "BEGIN{exit !($t < ${armed_secs[$budget]})}"; then
                armed_secs[$budget]=$t
            fi
        done
    done
    for budget in 0 18446744073709551615; do
        echo "fig14_pause_cdf x$iters (budget $budget): ${armed_secs[$budget]}s (best of $reps)"
    done
    armed_pct=$(awk "BEGIN{printf \"%.2f\", \
        (${armed_secs[18446744073709551615]}-${armed_secs[0]})/${armed_secs[0]}*100}")
    {
        echo "{"
        echo "  \"name\": \"gc_incremental\","
        echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"reps\": ${reps},"
        echo "  \"target_fig6_spark_regression_percent\": 2.0,"
        if [[ -n "$baseline" ]]; then
            pct=$(awk "BEGIN{printf \"%.2f\", ($spark_secs-$baseline)/$baseline*100}")
            echo "  \"baseline_fig6_spark_secs\": ${baseline},"
            echo "  \"fig6_spark_secs\": ${spark_secs},"
            echo "  \"fig6_spark_regression_percent\": ${pct},"
        fi
        echo "  \"target_armed_idle_overhead_percent\": 5.0,"
        echo "  \"armed_point_stop_world_secs\": ${armed_secs[0]},"
        echo "  \"armed_point_idle_barrier_secs\": ${armed_secs[18446744073709551615]},"
        echo "  \"armed_idle_overhead_percent\": ${armed_pct}"
        echo "}"
    } > "BENCH_gc_incremental.json"
    echo "wrote BENCH_gc_incremental.json (armed-idle overhead ${armed_pct}%)"
    if [[ -n "$baseline" ]]; then
        echo "fig6_spark: ${spark_secs}s vs baseline ${baseline}s (${pct}%)"
        if awk "BEGIN{exit !($pct >= 2.0)}"; then
            echo "ERROR: fig6_spark regressed ${pct}% (>= 2% vs BENCH_faults.json)" >&2
            exit 1
        fi
    else
        echo "note: BENCH_faults.json not found; no fig6_spark gate applied"
    fi
    if awk "BEGIN{exit !($armed_pct >= 5.0)}"; then
        echo "ERROR: armed-idle barrier costs ${armed_pct}% (>= 5%) over stop-world" >&2
        exit 1
    fi
    exit 0
fi

if [[ "$name" == "tenants" ]]; then
    reps="${BENCH_TENANT_REPS:-3}"
    declare -A secs
    for b in fig6_spark fig15_tenants; do
        best=""
        for _ in $(seq "$reps"); do
            t0=$(now_ms)
            "target/release/$b" >/dev/null
            t=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
            if [[ -z "$best" ]] || awk "BEGIN{exit !($t < $best)}"; then
                best=$t
            fi
        done
        secs[$b]=$best
        echo "$b: ${best}s (best of $reps)"
    done
    baseline=""
    if [[ -f BENCH_gc_incremental.json ]]; then
        baseline=$(sed -n 's/^[[:space:]]*"fig6_spark_secs": \([0-9.]*\),*$/\1/p' \
            BENCH_gc_incremental.json | head -1)
    fi
    {
        echo "{"
        echo "  \"name\": \"tenants\","
        echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"reps\": ${reps},"
        echo "  \"target_fig6_spark_regression_percent\": 2.0,"
        if [[ -n "$baseline" ]]; then
            pct=$(awk "BEGIN{printf \"%.2f\", (${secs[fig6_spark]}-$baseline)/$baseline*100}")
            echo "  \"baseline_fig6_spark_secs\": ${baseline},"
            echo "  \"fig6_spark_regression_percent\": ${pct},"
        fi
        echo "  \"wall_clock_secs\": {"
        echo "    \"fig6_spark\": ${secs[fig6_spark]},"
        echo "    \"fig15_tenants\": ${secs[fig15_tenants]}"
        echo "  }"
        echo "}"
    } > "$out"
    echo "wrote $out"
    if [[ -n "$baseline" ]]; then
        echo "fig6_spark: ${secs[fig6_spark]}s vs baseline ${baseline}s (${pct}%)"
        if awk "BEGIN{exit !($pct >= 2.0)}"; then
            echo "ERROR: fig6_spark regressed ${pct}% (>= 2% vs BENCH_gc_incremental.json)" >&2
            echo "(single-tenant arbitration must be free on the host too)" >&2
            exit 1
        fi
    else
        echo "note: BENCH_gc_incremental.json not found; no regression gate applied"
    fi
    exit 0
fi

if [[ "$name" == "placement" ]]; then
    reps="${BENCH_PLACEMENT_REPS:-3}"
    declare -A secs
    for b in fig6_spark fig16_placement; do
        best=""
        for _ in $(seq "$reps"); do
            t0=$(now_ms)
            "target/release/$b" >/dev/null
            t=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
            if [[ -z "$best" ]] || awk "BEGIN{exit !($t < $best)}"; then
                best=$t
            fi
        done
        secs[$b]=$best
        echo "$b: ${best}s (best of $reps)"
    done
    baseline=""
    if [[ -f BENCH_tenants.json ]]; then
        baseline=$(sed -n 's/^[[:space:]]*"fig6_spark": \([0-9.]*\),*$/\1/p' \
            BENCH_tenants.json | head -1)
    fi
    {
        echo "{"
        echo "  \"name\": \"placement\","
        echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"reps\": ${reps},"
        echo "  \"target_fig6_spark_regression_percent\": 2.0,"
        if [[ -n "$baseline" ]]; then
            pct=$(awk "BEGIN{printf \"%.2f\", (${secs[fig6_spark]}-$baseline)/$baseline*100}")
            echo "  \"baseline_fig6_spark_secs\": ${baseline},"
            echo "  \"fig6_spark_regression_percent\": ${pct},"
        fi
        echo "  \"wall_clock_secs\": {"
        echo "    \"fig6_spark\": ${secs[fig6_spark]},"
        echo "    \"fig16_placement\": ${secs[fig16_placement]}"
        echo "  }"
        echo "}"
    } > "$out"
    echo "wrote $out"
    if [[ -n "$baseline" ]]; then
        echo "fig6_spark: ${secs[fig6_spark]}s vs baseline ${baseline}s (${pct}%)"
        if awk "BEGIN{exit !($pct >= 2.0)}"; then
            echo "ERROR: fig6_spark regressed ${pct}% (>= 2% vs BENCH_tenants.json)" >&2
            echo "(the dormant pretenure/cost-model hooks must be free)" >&2
            exit 1
        fi
    else
        echo "note: BENCH_tenants.json not found; no regression gate applied"
    fi
    exit 0
fi

if [[ "$name" == "query" ]]; then
    reps="${BENCH_QUERY_REPS:-3}"
    declare -A secs
    for b in fig6_spark fig17_query; do
        best=""
        for _ in $(seq "$reps"); do
            t0=$(now_ms)
            "target/release/$b" >/dev/null
            t=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
            if [[ -z "$best" ]] || awk "BEGIN{exit !($t < $best)}"; then
                best=$t
            fi
        done
        secs[$b]=$best
        echo "$b: ${best}s (best of $reps)"
    done
    baseline=""
    if [[ -f BENCH_placement.json ]]; then
        baseline=$(sed -n 's/^[[:space:]]*"fig6_spark": \([0-9.]*\),*$/\1/p' \
            BENCH_placement.json | head -1)
    fi
    {
        echo "{"
        echo "  \"name\": \"query\","
        echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"reps\": ${reps},"
        echo "  \"target_fig6_spark_regression_percent\": 2.0,"
        if [[ -n "$baseline" ]]; then
            pct=$(awk "BEGIN{printf \"%.2f\", (${secs[fig6_spark]}-$baseline)/$baseline*100}")
            echo "  \"baseline_fig6_spark_secs\": ${baseline},"
            echo "  \"fig6_spark_regression_percent\": ${pct},"
        fi
        echo "  \"wall_clock_secs\": {"
        echo "    \"fig6_spark\": ${secs[fig6_spark]},"
        echo "    \"fig17_query\": ${secs[fig17_query]}"
        echo "  }"
        echo "}"
    } > "$out"
    echo "wrote $out"
    if [[ -n "$baseline" ]]; then
        echo "fig6_spark: ${secs[fig6_spark]}s vs baseline ${baseline}s (${pct}%)"
        if awk "BEGIN{exit !($pct >= 2.0)}"; then
            echo "ERROR: fig6_spark regressed ${pct}% (>= 2% vs BENCH_placement.json)" >&2
            echo "(the query plane must be free when no one queries)" >&2
            exit 1
        fi
    else
        echo "note: BENCH_placement.json not found; no regression gate applied"
    fi
    exit 0
fi

declare -A secs
if [[ "${BENCH_SKIP_MICRO:-0}" != "1" ]]; then
    echo "== micro =="
    t0=$(now_ms)
    cargo run -q --release -p teraheap-bench --bin micro >/dev/null
    secs[micro]=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
    echo "micro: ${secs[micro]}s"
fi

for b in "${fig_bins[@]}"; do
    echo "== $b =="
    t0=$(now_ms)
    cargo run -q --release -p teraheap-bench --bin "$b" >/dev/null
    secs[$b]=$(awk "BEGIN{printf \"%.3f\", ($(now_ms)-$t0)/1000}")
    echo "$b: ${secs[$b]}s"
done

threads="${TERAHEAP_BENCH_THREADS:-$(nproc)}"
{
    echo "{"
    echo "  \"name\": \"${name}\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"machine\": {"
    echo "    \"kernel\": \"$(uname -sr)\","
    echo "    \"cpu\": \"$(grep -m1 '^model name' /proc/cpuinfo | cut -d: -f2- | sed 's/^ //' || echo unknown)\","
    echo "    \"cores\": $(nproc),"
    echo "    \"bench_threads\": ${threads},"
    echo "    \"mem_kb\": $(grep -m1 MemTotal /proc/meminfo | awk '{print $2}')"
    echo "  },"
    echo "  \"wall_clock_secs\": {"
    sep=""
    for b in micro "${fig_bins[@]}"; do
        [[ -v "secs[$b]" ]] || continue
        printf '%s    "%s": %s' "$sep" "$b" "${secs[$b]}"
        sep=$',\n'
    done
    printf '\n  }\n}\n'
} > "$out"

echo "wrote $out"
